package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"reflect"
	"runtime"
	"sort"
)

// Plan fingerprinting: a canonical, structure-stable hash of an operator
// subtree, so equivalent subplans collide across jobs (and across process
// restarts). Two operators have the same fingerprint exactly when their
// subtrees are structurally identical: same operator kinds, labels, scalar
// parameters, UDF identities, and source datasets (name + version) wired in
// the same shape. The cross-job result cache (internal/rescache) keys on
// these fingerprints.
//
// Canonicalization rules (also documented in DESIGN.md):
//   - The hash of an operator covers its kind, label, every kind-relevant
//     scalar parameter, the identity of each attached UDF, and the
//     fingerprints of its dataflow inputs in port order plus its broadcast
//     inputs in sorted order.
//   - UDF identity is the function's symbol name (runtime.FuncForPC), which
//     is stable across restarts of the same binary. Closures share a symbol
//     per code site, so the operator label participates in the hash to keep
//     differently-registered UDFs apart.
//   - Named sources (files, tables) hash their dataset name plus a version
//     supplied by the SourceVersion hook; bumping the version (explicit
//     invalidation) changes every fingerprint downstream of the dataset.
//   - Collection sources hash their full content via the binary quantum
//     codec, so identical literal inputs collide and different ones do not.
//   - Subtrees containing loops, loop placeholders (LoopInput/OuterRef), or
//     values the codec cannot encode are not fingerprintable: they are
//     omitted from the result, as is everything downstream of them.

// SourceRef names one source dataset a fingerprinted subtree reads, with
// the dataset version the fingerprint was computed at.
type SourceRef struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
}

// FPInfo is the fingerprint of one operator's subtree.
type FPInfo struct {
	// Hash is the canonical subtree hash, hex-encoded.
	Hash string
	// Sources lists the named source datasets the subtree reads (deduped,
	// sorted by name). Collection sources are content-hashed, not listed.
	Sources []SourceRef
	// Ops is the subtree's operators (the op itself plus everything it
	// transitively reads), in no particular order. Cost marking sums the
	// per-operator estimates over it.
	Ops []*Operator
}

// FingerprintOptions tune a FingerprintPlan pass.
type FingerprintOptions struct {
	// SourceVersion returns the current version of a named source dataset;
	// nil pins every version to 0.
	SourceVersion func(name string) uint64
	// Skip marks operators as unfingerprintable (e.g. cache-scan sources
	// substituted by a previous rewrite, which must not be re-cached under a
	// new identity). Everything downstream of a skipped operator is omitted.
	Skip map[*Operator]bool
}

// FingerprintPlan computes the subtree fingerprint of every fingerprintable
// operator in the plan. Operators whose subtree contains a loop, a loop
// placeholder, a skipped operator, or un-encodable collection data are
// absent from the result.
func FingerprintPlan(p *Plan, opts FingerprintOptions) map[*Operator]*FPInfo {
	order, err := p.TopoOrder()
	if err != nil {
		return nil
	}
	out := make(map[*Operator]*FPInfo, len(order))
	for _, op := range order {
		if opts.Skip[op] || !fingerprintableKind(op, p) {
			continue
		}
		// All inputs (dataflow and broadcast) must themselves be
		// fingerprintable.
		ins := make([]*FPInfo, 0, len(op.Inputs()))
		ok := true
		for _, in := range op.Inputs() {
			info := out[in]
			if info == nil {
				ok = false
				break
			}
			ins = append(ins, info)
		}
		var bcs []*FPInfo
		if ok {
			for _, bc := range op.Broadcasts() {
				info := out[bc]
				if info == nil {
					ok = false
					break
				}
				bcs = append(bcs, info)
			}
		}
		if !ok {
			continue
		}
		info, err := fingerprintOp(op, ins, bcs, opts)
		if err != nil {
			continue
		}
		out[op] = info
	}
	return out
}

// fingerprintableKind rejects operators whose output is not a pure function
// of their fingerprinted inputs: loops (nested bodies with conditions),
// loop placeholders, and outer references.
func fingerprintableKind(op *Operator, p *Plan) bool {
	if op.Kind.IsLoop() || op.OuterRef != nil {
		return false
	}
	if op == p.LoopInput {
		return false
	}
	// A CollectionSource with nil payload is a placeholder (loop input or
	// outer reference), never a literal empty collection with semantics.
	if op.Kind == KindCollectionSource && op.Params.Collection == nil {
		return false
	}
	return true
}

// fingerprintOp hashes one operator given its input fingerprints.
func fingerprintOp(op *Operator, ins, bcs []*FPInfo, opts FingerprintOptions) (*FPInfo, error) {
	h := sha256.New()
	w := func(parts ...string) {
		for _, s := range parts {
			var lb [8]byte
			binary.LittleEndian.PutUint64(lb[:], uint64(len(s)))
			h.Write(lb[:])
			h.Write([]byte(s))
		}
	}
	w("op", string(op.Kind), op.Label, op.TargetPlatform)
	w(fmt.Sprintf("sel=%g", op.Selectivity))
	if err := hashParams(w, op); err != nil {
		return nil, err
	}
	w(udfIdentity(op.UDF))

	info := &FPInfo{Ops: []*Operator{op}}
	seenOps := map[*Operator]bool{op: true}
	seenSrc := map[string]uint64{}
	merge := func(in *FPInfo) {
		for _, o := range in.Ops {
			if !seenOps[o] {
				seenOps[o] = true
				info.Ops = append(info.Ops, o)
			}
		}
		for _, s := range in.Sources {
			seenSrc[s.Name] = s.Version
		}
	}
	for i, in := range ins {
		w(fmt.Sprintf("in%d", i), in.Hash)
		merge(in)
	}
	// Broadcast order is not semantically meaningful; sort for stability.
	bcHashes := make([]string, len(bcs))
	for i, bc := range bcs {
		bcHashes[i] = bc.Hash
		merge(bc)
	}
	sort.Strings(bcHashes)
	for _, bh := range bcHashes {
		w("bc", bh)
	}

	// Named source datasets: name + version.
	if name := sourceDataset(op); name != "" {
		var version uint64
		if opts.SourceVersion != nil {
			version = opts.SourceVersion(name)
		}
		w("src", name, fmt.Sprintf("v%d", version))
		seenSrc[name] = version
	}

	for name, version := range seenSrc {
		info.Sources = append(info.Sources, SourceRef{Name: name, Version: version})
	}
	sort.Slice(info.Sources, func(i, j int) bool { return info.Sources[i].Name < info.Sources[j].Name })
	info.Hash = hex.EncodeToString(h.Sum(nil))
	return info, nil
}

// SourceDatasetName returns the canonical dataset name an operator reads
// ("" for non-source operators and content-hashed collections).
func SourceDatasetName(op *Operator) string { return sourceDataset(op) }

func sourceDataset(op *Operator) string {
	switch op.Kind {
	case KindTextFileSource:
		return op.Params.Path
	case KindTableSource:
		return op.Params.Store + "." + op.Params.Table
	}
	return ""
}

// hashParams writes every kind-relevant scalar parameter. Collection
// payloads are content-hashed through the quantum codec; an un-encodable
// element makes the subtree unfingerprintable.
func hashParams(w func(...string), op *Operator) error {
	p := op.Params
	w("path", p.Path, "table", p.Table, "store", p.Store)
	for _, c := range p.Columns {
		w(fmt.Sprintf("col%d", c))
	}
	w(fmt.Sprintf("sample=%d/%g/%s/seed%d", p.SampleSize, p.SampleFraction, p.SampleMethod, p.Seed))
	w(fmt.Sprintf("iters=%d/%d damp=%g ie=%s%s", p.Iterations, p.MaxIterations, p.DampingFactor, p.IEOp1, p.IEOp2))
	if p.Where != nil {
		w("where", p.Where.String())
	}
	if op.Kind == KindCollectionSource {
		w(fmt.Sprintf("coll=%d", len(p.Collection)))
		var buf []byte
		for _, q := range p.Collection {
			raw, err := AppendQuantumBinary(buf[:0], q)
			if err != nil {
				return fmt.Errorf("core: fingerprint collection: %w", err)
			}
			buf = raw
			w(string(raw))
		}
	}
	return nil
}

// udfIdentity derives a stable identity string for the operator's UDFs: the
// symbol name of each non-nil function, tagged by role. Symbol names are
// stable across restarts of the same binary; two distinct closures created
// at the same code site share a symbol, which is why the operator label is
// hashed alongside.
func udfIdentity(u UDFs) string {
	var s string
	add := func(role string, fn any) {
		v := reflect.ValueOf(fn)
		if !v.IsValid() || v.IsNil() {
			return
		}
		name := "?"
		if f := runtime.FuncForPC(v.Pointer()); f != nil {
			name = f.Name()
		}
		s += role + "=" + name + ";"
	}
	add("map", u.Map)
	add("flatmap", u.FlatMap)
	add("pred", u.Pred)
	add("mappart", u.MapPart)
	add("key", u.Key)
	add("keyright", u.KeyRight)
	add("reduce", u.Reduce)
	add("combine", u.Combine)
	add("less", u.Less)
	add("format", u.Format)
	add("leftnums", u.LeftNums)
	add("rightnums", u.RightNums)
	add("cond", u.Cond)
	add("open", u.Open)
	// Declarative forms: the expression text is the identity (the paired
	// opaque closures, when present, hash to one shared symbol anyway).
	if u.MapExpr != nil {
		s += "mapexpr=" + u.MapExpr.String() + ";"
	}
	if u.ReduceExpr != nil {
		s += "reduceexpr=" + u.ReduceExpr.String() + ";"
	}
	return s
}
