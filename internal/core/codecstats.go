package core

import "sync/atomic"

// Process-wide codec byte counters: every framed binary quantum encoded or
// decoded adds its payload size here. The executor samples the total around
// each wave to attribute "bytes moved" to stages in per-job resource
// profiles, and restapi exports it as a gauge-free running total. A single
// process-wide counter (rather than per-stream plumbing) keeps the codec
// hot path to one atomic add.
var codecBytesMoved atomic.Int64

// CodecBytesMoved returns the total framed-codec payload bytes encoded plus
// decoded by this process since start.
func CodecBytesMoved() int64 { return codecBytesMoved.Load() }

func addCodecBytes(n int) { codecBytesMoved.Add(int64(n)) }

// dictColumnsBuilt counts string columns that engaged dictionary encoding
// (at batch build or wire decode), on the same process-wide pattern as the
// codec byte counter.
var dictColumnsBuilt atomic.Int64

// DictColumnsBuilt returns the total dictionary-encoded string columns this
// process has materialized since start.
func DictColumnsBuilt() int64 { return dictColumnsBuilt.Load() }

func addDictColumn() { dictColumnsBuilt.Add(1) }
