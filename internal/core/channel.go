package core

import (
	"fmt"
	"math"
	"sort"
)

// ChannelDescriptor describes a type of communication channel: an internal
// data structure of a platform (e.g. an RDD), or a platform-neutral one
// (a driver collection, a file). Channels are the vertices of the channel
// conversion graph.
type ChannelDescriptor struct {
	Name     string // unique, e.g. "collection", "rdd", "relation"
	Platform string // owning platform; "" for platform-neutral channels
	Reusable bool   // may be consumed by multiple stages without recomputation
	AtRest   bool   // data is at rest (checkpointable by the progressive optimizer)
}

// Channel is a runtime instance of a channel: a payload of quanta flowing
// between execution operators, possibly across platforms.
type Channel struct {
	Desc    ChannelDescriptor
	Payload any   // *SliceDataset, engine handle, file path string, table ref...
	Card    int64 // observed cardinality; negative if unknown

	consumed bool // single-use channels flip this on first consumption
}

// NewChannel creates a channel instance.
func NewChannel(desc ChannelDescriptor, payload any, card int64) *Channel {
	return &Channel{Desc: desc, Payload: payload, Card: card}
}

// Consume marks the channel as read once and returns an error when a
// non-reusable channel is read twice, surfacing executor bugs early.
func (c *Channel) Consume() error {
	if c.consumed && !c.Desc.Reusable {
		return fmt.Errorf("core: channel %s consumed twice but is not reusable", c.Desc.Name)
	}
	c.consumed = true
	return nil
}

// Conversion is a directed edge of the channel conversion graph: a regular
// execution operator that converts one channel type into another (e.g.
// SparkCollect: rdd -> collection). Its cost is affine in the cardinality.
type Conversion struct {
	Name     string
	From, To string // channel descriptor names

	// FixedCostMs + PerQuantumMs*card estimates the conversion cost in
	// milliseconds; the data movement planner minimizes the sum over the
	// chosen conversion tree.
	FixedCostMs  float64
	PerQuantumMs float64

	// Convert performs the conversion at execution time.
	Convert func(in *Channel) (*Channel, error)
}

// CostMs returns the estimated cost of converting card quanta.
func (cv *Conversion) CostMs(card float64) float64 {
	return cv.FixedCostMs + cv.PerQuantumMs*card
}

// ConversionGraph is the channel conversion graph: channel descriptors as
// vertices, conversions as directed edges. The optimizer searches it for
// minimal conversion trees connecting a producer channel to the channels
// required by (possibly several) consumers.
type ConversionGraph struct {
	channels    map[string]ChannelDescriptor
	conversions []*Conversion
	out         map[string][]*Conversion
}

// NewConversionGraph creates an empty conversion graph.
func NewConversionGraph() *ConversionGraph {
	return &ConversionGraph{
		channels: map[string]ChannelDescriptor{},
		out:      map[string][]*Conversion{},
	}
}

// AddChannel registers a channel descriptor. Re-registration with the same
// name is idempotent.
func (g *ConversionGraph) AddChannel(d ChannelDescriptor) {
	g.channels[d.Name] = d
}

// Channel returns the descriptor registered under name.
func (g *ConversionGraph) Channel(name string) (ChannelDescriptor, bool) {
	d, ok := g.channels[name]
	return d, ok
}

// Channels returns all registered descriptors sorted by name.
func (g *ConversionGraph) Channels() []ChannelDescriptor {
	out := make([]ChannelDescriptor, 0, len(g.channels))
	for _, d := range g.channels {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddConversion registers a conversion edge. Both endpoint channels must
// already be registered.
func (g *ConversionGraph) AddConversion(cv *Conversion) error {
	if _, ok := g.channels[cv.From]; !ok {
		return fmt.Errorf("core: conversion %s: unknown source channel %q", cv.Name, cv.From)
	}
	if _, ok := g.channels[cv.To]; !ok {
		return fmt.Errorf("core: conversion %s: unknown target channel %q", cv.Name, cv.To)
	}
	g.conversions = append(g.conversions, cv)
	g.out[cv.From] = append(g.out[cv.From], cv)
	return nil
}

// ConversionPath is a sequence of conversions from a source channel to a
// target channel, with its total estimated cost.
type ConversionPath struct {
	Steps  []*Conversion
	CostMs float64
}

// FindPath returns the cheapest conversion path from one channel to another
// for the given cardinality (Dijkstra over the conversion graph). A nil
// Steps slice with zero cost is returned when from == to. It returns an
// error when the target is unreachable.
func (g *ConversionGraph) FindPath(from, to string, card float64) (*ConversionPath, error) {
	if from == to {
		return &ConversionPath{}, nil
	}
	dist := map[string]float64{from: 0}
	prev := map[string]*Conversion{}
	visited := map[string]bool{}
	for {
		// Extract the unvisited vertex with minimal distance.
		cur, best := "", math.Inf(1)
		for name, d := range dist {
			if !visited[name] && d < best {
				cur, best = name, d
			}
		}
		if cur == "" {
			return nil, fmt.Errorf("core: no conversion path from %q to %q", from, to)
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for _, cv := range g.out[cur] {
			nd := best + cv.CostMs(card)
			if d, ok := dist[cv.To]; !ok || nd < d {
				dist[cv.To] = nd
				prev[cv.To] = cv
			}
		}
	}
	var steps []*Conversion
	for at := to; at != from; {
		cv := prev[at]
		steps = append([]*Conversion{cv}, steps...)
		at = cv.From
	}
	return &ConversionPath{Steps: steps, CostMs: dist[to]}, nil
}

// ConversionTree is a minimal conversion tree: the cheapest set of
// conversions that turns a root channel into every one of several target
// channels, sharing common prefixes (Section 4.1, data movement planning).
type ConversionTree struct {
	Root    string
	Edges   []*Conversion // in a valid execution order (parents before children)
	CostMs  float64
	Targets []string
}

// FindTree computes a minimal conversion tree from root to all targets for
// the given cardinality using the Dreyfus–Wagner Steiner tree dynamic
// program (the problem is NP-hard; conversion graphs are small, so the
// exact exponential-in-|targets| algorithm is practical — this is the
// "kernelized" search of the paper scaled to our graph sizes).
func (g *ConversionGraph) FindTree(root string, targets []string, card float64) (*ConversionTree, error) {
	// Deduplicate targets; drop targets equal to the root.
	seen := map[string]bool{}
	var terms []string
	for _, t := range targets {
		if t == root || seen[t] {
			continue
		}
		seen[t] = true
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return &ConversionTree{Root: root, Targets: targets}, nil
	}

	// Vertex indexing.
	names := make([]string, 0, len(g.channels))
	for n := range g.channels {
		names = append(names, n)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	n := len(names)
	k := len(terms)
	if k > 12 {
		return nil, fmt.Errorf("core: too many conversion targets (%d)", k)
	}

	// dp[mask][v] = min cost of a tree rooted at v covering terminal set mask,
	// where edges are directed away from v.
	const inf = math.MaxFloat64 / 4
	full := 1 << k
	dp := make([][]float64, full)
	type choice struct {
		kind    int8 // 0 none, 1 split (sub-mask), 2 edge (conversion)
		subMask int
		cv      *Conversion
	}
	ch := make([][]choice, full)
	for m := range dp {
		dp[m] = make([]float64, n)
		ch[m] = make([]choice, n)
		for v := range dp[m] {
			dp[m][v] = inf
		}
	}
	for i, t := range terms {
		dp[1<<i][idx[t]] = 0
	}
	for mask := 1; mask < full; mask++ {
		// Combine sub-trees at the same vertex.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub < mask^sub {
				continue // each split counted once
			}
			rest := mask ^ sub
			for v := 0; v < n; v++ {
				if dp[sub][v] < inf && dp[rest][v] < inf {
					if c := dp[sub][v] + dp[rest][v]; c < dp[mask][v] {
						dp[mask][v] = c
						ch[mask][v] = choice{kind: 1, subMask: sub}
					}
				}
			}
		}
		// Relax along reversed edges (tree edges point away from the root, so
		// we walk conversions backwards: dp[mask][from] <- dp[mask][to]+cost).
		// Bellman–Ford style relaxation until fixpoint (graphs are tiny).
		for changed := true; changed; {
			changed = false
			for _, cv := range g.conversions {
				u, v := idx[cv.From], idx[cv.To]
				if dp[mask][v] < inf {
					if c := dp[mask][v] + cv.CostMs(card); c < dp[mask][u] {
						dp[mask][u] = c
						ch[mask][u] = choice{kind: 2, cv: cv}
						changed = true
					}
				}
			}
		}
	}
	rootIdx, ok := idx[root]
	if !ok {
		return nil, fmt.Errorf("core: unknown root channel %q", root)
	}
	if dp[full-1][rootIdx] >= inf {
		return nil, fmt.Errorf("core: no conversion tree from %q to %v", root, terms)
	}

	// Reconstruct edges.
	var edges []*Conversion
	var rec func(mask, v int)
	rec = func(mask, v int) {
		c := ch[mask][v]
		switch c.kind {
		case 1:
			rec(c.subMask, v)
			rec(mask^c.subMask, v)
		case 2:
			edges = append(edges, c.cv)
			rec(mask, idx[c.cv.To])
		}
	}
	rec(full-1, rootIdx)
	return &ConversionTree{
		Root:    root,
		Edges:   edges,
		CostMs:  dp[full-1][rootIdx],
		Targets: targets,
	}, nil
}
