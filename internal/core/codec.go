package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Tagged-JSON quantum codec: values are JSON with a one-letter type tag,
// applied recursively, so heterogeneous and nested quantum types (records
// of KVs of int64s, ...) round-trip faithfully — a UDF downstream of a
// conversion must see exactly the types its producer emitted.
//
// This is the legacy wire format and the human-readable fallback (REST
// responses, external-system emulations). The data-movement hot paths use
// the binary codec in bincodec.go; readers of at-rest quanta auto-detect
// which of the two formats they are looking at.

type taggedQuantum struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v"`
}

// EncodeQuantum serializes one quantum to a tagged JSON document.
func EncodeQuantum(q any) ([]byte, error) {
	var tag string
	var payload any
	switch v := q.(type) {
	case string:
		tag, payload = "s", v
	case float64:
		tag, payload = "f", v
	case int:
		tag, payload = "i", int64(v)
	case int64:
		tag, payload = "i", v
	case bool:
		tag, payload = "b", v
	case nil:
		tag, payload = "n", nil
	case []float64:
		tag, payload = "F", v
	case Record:
		parts, err := encodeSlice([]any(v))
		if err != nil {
			return nil, err
		}
		tag, payload = "r", parts
	case []any:
		parts, err := encodeSlice(v)
		if err != nil {
			return nil, err
		}
		tag, payload = "a", parts
	case KV:
		key, err := EncodeQuantum(v.Key)
		if err != nil {
			return nil, err
		}
		val, err := EncodeQuantum(v.Value)
		if err != nil {
			return nil, err
		}
		tag, payload = "k", [2]json.RawMessage{key, val}
	case Edge:
		tag, payload = "e", [2]int64{v.Src, v.Dst}
	case Group:
		key, err := EncodeQuantum(v.Key)
		if err != nil {
			return nil, err
		}
		vals, err := encodeSlice(v.Values)
		if err != nil {
			return nil, err
		}
		raws, err := json.Marshal(vals)
		if err != nil {
			return nil, err
		}
		tag, payload = "g", [2]json.RawMessage{key, raws}
	default:
		tag, payload = "j", v // best effort: plain JSON (numbers decode as float64)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("core: encode quantum %T: %w", q, err)
	}
	return json.Marshal(taggedQuantum{T: tag, V: raw})
}

func encodeSlice(vs []any) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		raw, err := EncodeQuantum(v)
		if err != nil {
			return nil, err
		}
		out[i] = raw
	}
	return out, nil
}

// DecodeQuantum parses a tagged JSON document back into a quantum.
func DecodeQuantum(line []byte) (any, error) {
	var tq taggedQuantum
	if err := json.Unmarshal(line, &tq); err != nil {
		return nil, fmt.Errorf("core: decode quantum: %w", err)
	}
	switch tq.T {
	case "s":
		var s string
		return s, json.Unmarshal(tq.V, &s)
	case "f":
		var f float64
		return f, json.Unmarshal(tq.V, &f)
	case "i":
		var i int64
		return i, json.Unmarshal(tq.V, &i)
	case "b":
		var b bool
		return b, json.Unmarshal(tq.V, &b)
	case "n":
		return nil, nil
	case "F":
		var f []float64
		return f, json.Unmarshal(tq.V, &f)
	case "r":
		vs, err := decodeSliceRaw(tq.V)
		return Record(vs), err
	case "a":
		return decodeSliceRaw(tq.V)
	case "k":
		var kv [2]json.RawMessage
		if err := json.Unmarshal(tq.V, &kv); err != nil {
			return nil, err
		}
		key, err := DecodeQuantum(kv[0])
		if err != nil {
			return nil, err
		}
		val, err := DecodeQuantum(kv[1])
		if err != nil {
			return nil, err
		}
		return KV{Key: key, Value: val}, nil
	case "e":
		var e [2]int64
		if err := json.Unmarshal(tq.V, &e); err != nil {
			return nil, err
		}
		return Edge{Src: e[0], Dst: e[1]}, nil
	case "g":
		var g [2]json.RawMessage
		if err := json.Unmarshal(tq.V, &g); err != nil {
			return nil, err
		}
		key, err := DecodeQuantum(g[0])
		if err != nil {
			return nil, err
		}
		vals, err := decodeSliceRaw(g[1])
		if err != nil {
			return nil, err
		}
		return Group{Key: key, Values: vals}, nil
	default:
		var v any
		return v, json.Unmarshal(tq.V, &v)
	}
}

func decodeSliceRaw(raw json.RawMessage) ([]any, error) {
	var parts []json.RawMessage
	if err := json.Unmarshal(raw, &parts); err != nil {
		return nil, err
	}
	out := make([]any, len(parts))
	for i, p := range parts {
		v, err := DecodeQuantum(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// WriteQuantaFile encodes quanta to a file in the framed binary format
// (see bincodec.go). The file is written via a temporary sibling and
// renamed into place on success, so an encode or flush error never leaves
// a partially-written file behind at path.
func WriteQuantaFile(path string, quanta []any) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".quanta-*.tmp")
	if err != nil {
		return fmt.Errorf("core: write quanta file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	enc := NewQuantaEncoder(f)
	if err := enc.EncodeSlice(quanta); err != nil {
		return fail(err)
	}
	if err := enc.Flush(); err != nil {
		return fail(fmt.Errorf("core: flush quanta file: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: close quanta file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: finalize quanta file: %w", err)
	}
	return nil
}

// ReadQuantaFile decodes a file written by WriteQuantaFile, auto-detecting
// the format: framed binary (current) or tagged JSON lines (files written
// before the binary codec existed).
func ReadQuantaFile(path string) ([]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: read quanta file: %w", err)
	}
	defer f.Close()
	return ReadQuantaStream(f)
}

// ReadQuantaFileSegments decodes a quanta file like ReadQuantaFile but keeps
// column-batch frames as native segments (see ReadQuantaStreamSegments).
func ReadQuantaFileSegments(path string) ([]Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: read quanta file: %w", err)
	}
	defer f.Close()
	return ReadQuantaStreamSegments(f)
}

// ReadTextFile reads a plain text file into one string quantum per line.
func ReadTextFile(path string) ([]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: read text file: %w", err)
	}
	defer f.Close()
	var out []any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: scan text file: %w", err)
	}
	return out, nil
}

// WriteTextFile writes formatted quanta to a plain text file.
func WriteTextFile(path string, quanta []any, format func(any) string) error {
	if format == nil {
		format = func(q any) string { return fmt.Sprint(q) }
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: write text file: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	for _, q := range quanta {
		w.WriteString(format(q))
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: flush text file: %w", err)
	}
	return f.Close()
}
