package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// --- dictionary-encoded string columns ------------------------------------

func TestDictColumnBuiltForLowCardinality(t *testing.T) {
	rows := make([]any, 100)
	for i := range rows {
		rows[i] = Record{int64(i), fmt.Sprintf("g%d", i%5)}
	}
	b, ok := BatchFromRows(rows)
	if !ok {
		t.Fatal("BatchFromRows failed")
	}
	col := b.Cols[1]
	if !col.DictEncoded() {
		t.Fatal("low-cardinality string column not dictionary-encoded")
	}
	if len(col.Dict) != 5 {
		t.Fatalf("dict size = %d, want 5", len(col.Dict))
	}
	// First-occurrence order of the distinct values.
	for i := 0; i < 5; i++ {
		if col.Dict[i] != fmt.Sprintf("g%d", i) {
			t.Fatalf("dict[%d] = %q", i, col.Dict[i])
		}
	}
	if got := b.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatal("dict batch does not reproduce rows")
	}
}

func TestDictColumnSkippedForHighCardinality(t *testing.T) {
	// Every value distinct: dictMinRowsPer forbids the dictionary.
	rows := make([]any, 64)
	for i := range rows {
		rows[i] = Record{fmt.Sprintf("unique-%d", i)}
	}
	b, ok := BatchFromRows(rows)
	if !ok {
		t.Fatal("BatchFromRows failed")
	}
	if b.Cols[0].DictEncoded() {
		t.Fatal("high-cardinality column should not be dictionary-encoded")
	}
	if got := b.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatal("plain string batch does not reproduce rows")
	}
}

func TestDictColumnCodecRoundTripAndCorruption(t *testing.T) {
	rows := make([]any, 80)
	for i := range rows {
		var s any = fmt.Sprintf("v%d", i%7)
		if i%11 == 0 {
			s = nil // validity holes must survive the dictionary frame
		}
		rows[i] = Record{s, int64(i)}
	}
	b, ok := BatchFromRows(rows)
	if !ok {
		t.Fatal("BatchFromRows failed")
	}
	if !b.Cols[0].DictEncoded() {
		t.Fatal("expected a dictionary column")
	}
	enc, err := AppendColumnBatchBinary(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeQuantumBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	db := q.(*ColumnBatch)
	if !db.Cols[0].DictEncoded() {
		t.Fatal("decoded column lost its dictionary form")
	}
	if got := db.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatalf("dict codec round trip mismatch:\n got %v\nwant %v", got[:4], rows[:4])
	}
	// Every strict prefix must error, never panic or mis-decode.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeQuantumBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestFilterSelDictMatchesRowEval(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rows := make([]any, 300)
	for i := range rows {
		rows[i] = Record{fmt.Sprintf("g%d", rng.Intn(6)), int64(i)}
	}
	b, _ := BatchFromRows(rows)
	if !b.Cols[0].DictEncoded() {
		t.Fatal("expected dictionary column")
	}
	base := make([]int, len(rows))
	for i := range base {
		base[i] = i
	}
	for _, p := range []Predicate{
		{Col: 0, Op: PredEq, Value: "g3"},
		{Col: 0, Op: PredLt, Value: "g3"},
		{Col: 0, Op: PredGe, Value: "g2"},
		{Col: 0, Op: PredPrefix, Value: "g"},
		{Col: 0, Op: PredPrefix, Value: "g4"},
		{Col: 0, Op: PredEq, Value: "absent"},
	} {
		p := p
		sel := b.FilterSel(0, &p, base, nil)
		fn := p.Fn()
		var want []int
		for i, q := range rows {
			if fn(q) {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(sel, want) && !(len(sel) == 0 && len(want) == 0) {
			t.Fatalf("pred %v: sel %v want %v", p, sel, want)
		}
	}
}

// --- lazy per-column construction ------------------------------------------

func TestBatchFromRowsNeedingBuildsOnlyNeeded(t *testing.T) {
	rows := make([]any, 50)
	for i := range rows {
		rows[i] = Record{int64(i), "wide-string-payload", float64(i) / 2}
	}
	b, ok := BatchFromRowsNeeding(rows, []int{0, 2, 9, -3})
	if !ok {
		t.Fatal("BatchFromRowsNeeding failed")
	}
	if b.Cols[0] == nil || b.Cols[2] == nil {
		t.Fatal("needed columns not built")
	}
	if b.Cols[1] != nil {
		t.Fatal("unneeded column was built")
	}
	// Emission reads clean columns from the original boxed rows, so the
	// unbuilt column round-trips regardless.
	if got := b.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatal("lazy batch does not reproduce rows")
	}
	// A selection-vector emission also survives unbuilt columns.
	out := b.EmitRows(nil, []int{3, 7}, nil)
	if len(out) != 2 || !reflect.DeepEqual(out[0], rows[3]) || !reflect.DeepEqual(out[1], rows[7]) {
		t.Fatalf("selective emission over lazy batch = %v", out)
	}
}

// --- grouped-aggregation state ---------------------------------------------

func randAggRows(rng *rand.Rand, n int) []any {
	rows := make([]any, n)
	for i := range rows {
		rows[i] = Record{
			fmt.Sprintf("g%d", rng.Intn(5)),
			int64(rng.Intn(50) - 25),
			float64(rng.Intn(40)) / 4,
			int64(rng.Intn(3)),
		}
	}
	return rows
}

func TestAggStateBatchMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	expr := &ReduceExpr{
		GroupCols: []int{0, 3},
		Aggs: []AggSpec{
			{Op: AggSum, Col: 1},
			{Op: AggCount, Col: WholeQuantum},
			{Op: AggMin, Col: 1},
			{Op: AggMax, Col: 2},
			{Op: AggAvg, Col: 2},
		},
	}
	for trial := 0; trial < 20; trial++ {
		rows := randAggRows(rng, 100+rng.Intn(400))
		b, ok := BatchFromRows(rows)
		if !ok {
			t.Fatal("BatchFromRows failed")
		}
		sel := make([]int, 0, len(rows))
		for i := range rows {
			if rng.Intn(4) > 0 {
				sel = append(sel, i)
			}
		}
		stB := NewAggState(expr)
		if !stB.PlanBatch(b, nil) {
			t.Fatal("PlanBatch refused a clean batch")
		}
		if !stB.AbsorbBatch(b, sel, nil) {
			t.Fatal("AbsorbBatch refused after PlanBatch accepted")
		}
		stR := NewAggState(expr)
		for _, i := range sel {
			stR.AbsorbRow(rows[i])
		}
		got, want := stB.Finalize(nil), stR.Finalize(nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batch absorb differs from row absorb\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestAggStatePartialMergeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1213))
	expr := &ReduceExpr{
		GroupCols: []int{0},
		Aggs: []AggSpec{
			{Op: AggSum, Col: 1},
			{Op: AggAvg, Col: 2},
			{Op: AggCount, Col: WholeQuantum},
		},
	}
	rows := randAggRows(rng, 600)
	// Direct: one state over all rows.
	want := AggregateRows(expr, rows)
	// Two-phase: partials per slice, merged in slice order.
	var partials []any
	for i := 0; i < len(rows); i += 150 {
		st := NewAggState(expr)
		st.AbsorbRows(rows[i:min(i+150, len(rows))])
		partials = st.Partials(partials)
	}
	merged := NewAggState(expr)
	merged.AbsorbPartials(partials)
	got := merged.Finalize(nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partial merge differs from direct aggregation\n got %v\nwant %v", got, want)
	}
}

func TestAggStatePlanBatchRejects(t *testing.T) {
	expr := &ReduceExpr{GroupCols: []int{0}, Aggs: []AggSpec{{Op: AggSum, Col: 1}}}

	// Scalar batch: no record columns to group on.
	sb, _ := BatchFromRows([]any{int64(1), int64(2), int64(3), int64(4)})
	if NewAggState(expr).PlanBatch(sb, nil) {
		t.Fatal("PlanBatch accepted a scalar batch")
	}

	// Validity hole in the aggregate column.
	rows := []any{Record{"a", int64(1)}, Record{"a", nil}, Record{"b", int64(2)}}
	hb, _ := BatchFromRows(rows)
	if NewAggState(expr).PlanBatch(hb, nil) {
		t.Fatal("PlanBatch accepted a batch with a null aggregate value")
	}

	// Non-numeric aggregate column.
	srows := []any{Record{"a", "x"}, Record{"b", "y"}}
	nb, _ := BatchFromRows(srows)
	if NewAggState(expr).PlanBatch(nb, nil) {
		t.Fatal("PlanBatch accepted a string aggregate column")
	}

	// Unbuilt (lazy) group column.
	lb, _ := BatchFromRowsNeeding([]any{Record{"a", int64(1)}, Record{"b", int64(2)}}, []int{1})
	if NewAggState(expr).PlanBatch(lb, nil) {
		t.Fatal("PlanBatch accepted a batch whose group column was never built")
	}
}
