// Package core defines RHEEM's data and processing model: data quanta,
// datasets, logical (platform-agnostic) operators, plans, channels, operator
// mappings, and execution plans. Everything above it (optimizer, executor,
// platform drivers, APIs) is built in terms of these types.
package core

import (
	"fmt"
	"sort"
)

// A data quantum is the smallest processing unit of a dataset: a line of
// text, a tuple, a graph edge, a (key, value) pair... Quanta are dynamically
// typed; operators refine their behaviour with UDFs that know the concrete
// type.
//
// Common concrete quantum types used throughout the system are defined
// below (Record, KV, Edge). UDFs are free to use their own types as well.

// Record is a positional tuple, the quantum of relational data.
type Record []any

// Field returns the i-th attribute of the record.
func (r Record) Field(i int) any { return r[i] }

// Float returns the i-th attribute coerced to float64. It panics if the
// attribute is not numeric, mirroring a UDF type error.
func (r Record) Float(i int) float64 {
	v, ok := toFloat(r[i])
	if !ok {
		panic(fmt.Sprintf("core: record field %d is %T, not numeric", i, r[i]))
	}
	return v
}

// Int returns the i-th attribute coerced to int64.
func (r Record) Int(i int) int64 {
	v, ok := toInt(r[i])
	if !ok {
		panic(fmt.Sprintf("core: record field %d is %T, not integral", i, r[i]))
	}
	return v
}

// String returns the i-th attribute coerced to string.
func (r Record) String(i int) string {
	if s, ok := r[i].(string); ok {
		return s
	}
	return fmt.Sprint(r[i])
}

// Copy returns a deep-enough copy of the record (attribute values are
// shared; the positional slice is fresh).
func (r Record) Copy() Record {
	c := make(Record, len(r))
	copy(c, r)
	return c
}

// KV is a keyed quantum, produced by key-extracting operators and consumed
// by grouping/joining ones.
type KV struct {
	Key   any
	Value any
}

// Edge is the quantum of graph data: a directed edge between two vertices.
type Edge struct {
	Src, Dst int64
}

// Group is the quantum produced by GroupBy: a key together with all values
// that share it.
type Group struct {
	Key    any
	Values []any
}

// Iterator yields data quanta one at a time. Next returns the next quantum
// and true, or a zero value and false once the iterator is exhausted.
type Iterator interface {
	Next() (any, bool)
}

// Dataset is a (re-)iterable collection of data quanta. Card returns the
// exact cardinality if it is known, or a negative value otherwise.
type Dataset interface {
	Open() Iterator
	Card() int64
}

// SliceDataset adapts an in-memory slice to the Dataset interface. It is
// the payload of collection-typed channels.
type SliceDataset struct{ Data []any }

// NewSliceDataset wraps data in a Dataset.
func NewSliceDataset(data []any) *SliceDataset { return &SliceDataset{Data: data} }

// Open returns an iterator over the slice.
func (s *SliceDataset) Open() Iterator { return &sliceIter{data: s.Data} }

// Card returns the exact number of quanta.
func (s *SliceDataset) Card() int64 { return int64(len(s.Data)) }

type sliceIter struct {
	data []any
	pos  int
}

func (it *sliceIter) Next() (any, bool) {
	if it.pos >= len(it.data) {
		return nil, false
	}
	v := it.data[it.pos]
	it.pos++
	return v, true
}

// FuncIterator adapts a function to the Iterator interface.
type FuncIterator func() (any, bool)

// Next invokes the wrapped function.
func (f FuncIterator) Next() (any, bool) { return f() }

// Collect drains an iterator into a slice.
func Collect(it Iterator) []any {
	var out []any
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Materialize drains a dataset into a slice.
func Materialize(d Dataset) []any { return Collect(d.Open()) }

// SortAny orders a slice of quanta by a caller-supplied less function,
// stably. It is shared by the single-node engines' Sort implementations.
func SortAny(data []any, less func(a, b any) bool) {
	sort.SliceStable(data, func(i, j int) bool { return less(data[i], data[j]) })
}

// CompareAny imposes a total order over the quantum types produced by the
// built-in operators (numbers before strings before everything else). It is
// the default ordering for Sort and Distinct when no UDF is given.
func CompareAny(a, b any) int {
	an, aIsNum := toFloat(a)
	bn, bIsNum := toFloat(b)
	switch {
	case aIsNum && bIsNum:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			return 0
		}
	case aIsNum:
		return -1
	case bIsNum:
		return 1
	}
	as, aIsStr := a.(string)
	bs, bIsStr := b.(string)
	switch {
	case aIsStr && bIsStr:
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	case aIsStr:
		return -1
	case bIsStr:
		return 1
	}
	// Fall back to the formatted representation; slow but total.
	afs, bfs := fmt.Sprint(a), fmt.Sprint(b)
	switch {
	case afs < bfs:
		return -1
	case afs > bfs:
		return 1
	default:
		return 0
	}
}

// toFloat is the single numeric-coercion table shared by Record.Float,
// predicate evaluation, MapExpr arithmetic, and CompareAny.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	}
	return 0, false
}

// toInt is toFloat's integral twin, shared by Record.Int. Floating values
// truncate toward zero like a Go conversion.
func toInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case float64:
		return int64(n), true
	case float32:
		return int64(n), true
	case uint64:
		return int64(n), true
	}
	return 0, false
}

// GroupKey converts an arbitrary quantum key into a comparable value usable
// as a Go map key. Scalars map to themselves; records and other composites
// map to their formatted representation.
func GroupKey(k any) any {
	switch k.(type) {
	case nil, bool, string,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64:
		return k
	default:
		return fmt.Sprint(k)
	}
}
