package core

import (
	"testing"
)

func streamsMapTemplate() ExecOpTemplate {
	return ExecOpTemplate{Name: "streams.map", Platform: "streams", Kind: KindMap, In: []string{"collection"}, Out: "collection"}
}

func sparkMapTemplate() ExecOpTemplate {
	return ExecOpTemplate{Name: "spark.map", Platform: "spark", Kind: KindMap, In: []string{"rdd"}, Out: "rdd"}
}

func newTestMappings() *MappingRegistry {
	r := NewMappingRegistry()
	r.Register(KindMap, Alternative{Platform: "streams", Steps: []ExecOpTemplate{streamsMapTemplate()}})
	r.Register(KindMap, Alternative{Platform: "spark", Steps: []ExecOpTemplate{sparkMapTemplate()}})
	// 1-to-n: global Reduce on streams = group-all + fold.
	r.Register(KindReduce, Alternative{Platform: "streams", Steps: []ExecOpTemplate{
		{Name: "streams.group-all", Platform: "streams", Kind: KindReduce, In: []string{"collection"}, Out: "collection"},
		{Name: "streams.fold", Platform: "streams", Kind: KindReduce, In: []string{"collection"}, Out: "collection"},
	}})
	return r
}

func TestAlternativesDirect(t *testing.T) {
	r := newTestMappings()
	op := &Operator{Kind: KindMap}
	alts := r.Alternatives(op)
	if len(alts) != 2 {
		t.Fatalf("alternatives = %v", alts)
	}
	// A 1-to-n alternative keeps its steps in order.
	red := r.Alternatives(&Operator{Kind: KindReduce})
	if len(red) != 1 || len(red[0].Steps) != 2 {
		t.Fatalf("reduce alternatives = %v", red)
	}
	if red[0].InChannels()[0] != "collection" || red[0].OutChannel() != "collection" {
		t.Errorf("channel endpoints = %v -> %v", red[0].InChannels(), red[0].OutChannel())
	}
}

func TestAlternativesHonourPlatformPin(t *testing.T) {
	r := newTestMappings()
	op := &Operator{Kind: KindMap, TargetPlatform: "spark"}
	alts := r.Alternatives(op)
	if len(alts) != 1 || alts[0].Platform != "spark" {
		t.Fatalf("pinned alternatives = %v", alts)
	}
	none := r.Alternatives(&Operator{Kind: KindMap, TargetPlatform: "flink"})
	if len(none) != 0 {
		t.Fatalf("expected no alternatives for unregistered pin, got %v", none)
	}
}

func TestChainPatternFusion(t *testing.T) {
	r := newTestMappings()
	// m-to-n: GroupBy + Map fuses into spark.reduce-by.
	r.RegisterChain(ChainPattern{
		Kinds: []Kind{KindGroupBy, KindMap},
		Build: func(ops []*Operator) Alternative {
			return Alternative{
				Platform: "spark",
				Steps:    []ExecOpTemplate{{Name: "spark.reduce-by", Platform: "spark", Kind: KindGroupBy, In: []string{"rdd"}, Out: "rdd"}},
				Covers:   2,
			}
		},
	})

	p := NewPlan("chain")
	src := p.NewOperator(KindCollectionSource, "")
	src.Params.Collection = []any{1}
	g := p.NewOperator(KindGroupBy, "")
	g.UDF.Key = func(q any) any { return q }
	m := p.NewOperator(KindMap, "agg")
	m.UDF.Map = func(q any) any { return q }
	sink := p.NewOperator(KindCollectionSink, "")
	p.Chain(src, g, m, sink)

	alts := r.Alternatives(g)
	var fused *Alternative
	for i := range alts {
		if alts[i].Covers == 2 {
			fused = &alts[i]
		}
	}
	if fused == nil {
		t.Fatalf("fused alternative not offered: %v", alts)
	}
	if fused.Steps[0].Name != "spark.reduce-by" {
		t.Errorf("fused steps = %v", fused.Steps)
	}
	// The chain must NOT match from the Map operator (wrong head kind).
	for _, a := range r.Alternatives(m) {
		if a.Covers > 1 {
			t.Errorf("chain matched at wrong operator: %v", a)
		}
	}
}

func TestChainPatternRejectsBranching(t *testing.T) {
	r := NewMappingRegistry()
	r.RegisterChain(ChainPattern{
		Kinds: []Kind{KindGroupBy, KindMap},
		Build: func(ops []*Operator) Alternative {
			return Alternative{Platform: "spark", Steps: []ExecOpTemplate{{Name: "fused", Platform: "spark"}}, Covers: 2}
		},
	})
	p := NewPlan("branchy")
	src := p.NewOperator(KindCollectionSource, "")
	src.Params.Collection = []any{1}
	g := p.NewOperator(KindGroupBy, "")
	m := p.NewOperator(KindMap, "")
	extra := p.NewOperator(KindCount, "") // second consumer of g
	sink1 := p.NewOperator(KindCollectionSink, "")
	sink2 := p.NewOperator(KindCollectionSink, "")
	p.Connect(src, g, 0)
	p.Connect(g, m, 0)
	p.Connect(g, extra, 0)
	p.Connect(m, sink1, 0)
	p.Connect(extra, sink2, 0)

	for _, a := range r.Alternatives(g) {
		if a.Covers > 1 {
			t.Fatal("fused alternative offered despite branching intermediate")
		}
	}
}

func TestChainPatternGuard(t *testing.T) {
	r := NewMappingRegistry()
	guardCalled := false
	r.RegisterChain(ChainPattern{
		Kinds: []Kind{KindMap},
		Guard: func(ops []*Operator) bool { guardCalled = true; return false },
		Build: func(ops []*Operator) Alternative {
			return Alternative{Platform: "spark", Steps: []ExecOpTemplate{{Name: "never"}}}
		},
	})
	p := NewPlan("guarded")
	m := p.NewOperator(KindMap, "")
	if alts := r.Alternatives(m); len(alts) != 0 {
		t.Fatalf("guard did not veto: %v", alts)
	}
	if !guardCalled {
		t.Fatal("guard not invoked")
	}
}

func TestChainPatternRespectsCoveredPins(t *testing.T) {
	r := NewMappingRegistry()
	r.RegisterChain(ChainPattern{
		Kinds: []Kind{KindGroupBy, KindMap},
		Build: func(ops []*Operator) Alternative {
			return Alternative{Platform: "spark", Steps: []ExecOpTemplate{{Name: "fused", Platform: "spark"}}, Covers: 2}
		},
	})
	p := NewPlan("pinned")
	g := p.NewOperator(KindGroupBy, "")
	m := p.NewOperator(KindMap, "")
	m.TargetPlatform = "streams" // covered op pinned elsewhere
	sink := p.NewOperator(KindCollectionSink, "")
	p.Connect(g, m, 0)
	p.Connect(m, sink, 0)

	for _, a := range r.Alternatives(g) {
		if a.Covers > 1 {
			t.Fatal("fusion ignored covered operator's platform pin")
		}
	}
}

func TestMappingValidate(t *testing.T) {
	r := newTestMappings()
	p := NewPlan("v")
	src := p.NewOperator(KindCollectionSource, "")
	src.Params.Collection = []any{1}
	m := p.NewOperator(KindMap, "")
	sink := p.NewOperator(KindCollectionSink, "")
	p.Chain(src, m, sink)
	// Source and sink kinds unregistered: Validate must complain.
	if err := r.Validate(p); err == nil {
		t.Fatal("expected validation error for unimplemented kinds")
	}
	r.Register(KindCollectionSource, Alternative{Platform: "streams", Steps: []ExecOpTemplate{{Name: "streams.src", Platform: "streams", Out: "collection"}}})
	r.Register(KindCollectionSink, Alternative{Platform: "streams", Steps: []ExecOpTemplate{{Name: "streams.sink", Platform: "streams", In: []string{"collection"}}}})
	if err := r.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMappingPlatforms(t *testing.T) {
	r := newTestMappings()
	ps := r.Platforms()
	if len(ps) != 2 || ps[0] != "spark" || ps[1] != "streams" {
		t.Fatalf("Platforms = %v", ps)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Driver("nope"); err == nil {
		t.Fatal("expected error for unknown driver")
	}
	d := &fakeDriver{name: "fake"}
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(d); err == nil {
		t.Fatal("expected duplicate registration error")
	}
	got, err := reg.Driver("fake")
	if err != nil || got != d {
		t.Fatalf("Driver = %v, %v", got, err)
	}
	if reg.StartupCostMs("fake") != 12.5 {
		t.Errorf("StartupCostMs = %v", reg.StartupCostMs("fake"))
	}
	if reg.StartupCostMs("unknown") != 0 {
		t.Errorf("unknown platform startup cost should be 0")
	}
	// The fake channel and conversion joined the graph.
	if _, ok := reg.Graph.Channel("fakechan"); !ok {
		t.Error("driver channel not registered in conversion graph")
	}
	if p, err := reg.Graph.FindPath("collection", "fakechan", 10); err != nil || len(p.Steps) != 1 {
		t.Errorf("driver conversion not usable: %v, %v", p, err)
	}
}

type fakeDriver struct{ name string }

func (d *fakeDriver) Name() string { return d.name }
func (d *fakeDriver) Execute(*Stage, *Inputs) (map[*Operator]*Channel, *StageStats, error) {
	return nil, nil, nil
}
func (d *fakeDriver) ChannelDescriptors() []ChannelDescriptor {
	return []ChannelDescriptor{{Name: "fakechan", Platform: d.name}}
}
func (d *fakeDriver) Conversions() []*Conversion {
	return []*Conversion{{Name: "to-fake", From: "collection", To: "fakechan", FixedCostMs: 1}}
}
func (d *fakeDriver) RegisterMappings(r *MappingRegistry) {
	r.Register(KindMap, Alternative{Platform: d.name, Steps: []ExecOpTemplate{{Name: "fake.map", Platform: d.name, In: []string{"fakechan"}, Out: "fakechan"}}})
}
func (d *fakeDriver) StartupCostMs() float64 { return 12.5 }
