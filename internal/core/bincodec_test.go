package core

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// randQuantum builds a randomly nested quantum with depth-limited recursion
// over every type the codec supports.
func randQuantum(r *rand.Rand, depth int) any {
	scalar := func() any {
		switch r.Intn(7) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return r.Int63() - r.Int63() // mixes signs and magnitudes
		case 3:
			return r.NormFloat64() * math.Pow(10, float64(r.Intn(10)))
		case 4:
			return randString(r)
		case 5:
			fs := make([]float64, r.Intn(4))
			for i := range fs {
				fs[i] = r.Float64()
			}
			return fs
		default:
			return int64(r.Intn(100))
		}
	}
	if depth <= 0 || r.Intn(3) == 0 {
		return scalar()
	}
	elems := func(n int) []any {
		out := make([]any, n)
		for i := range out {
			out[i] = randQuantum(r, depth-1)
		}
		return out
	}
	switch r.Intn(5) {
	case 0:
		return Record(elems(1 + r.Intn(4)))
	case 1:
		return KV{Key: randQuantum(r, depth-1), Value: randQuantum(r, depth-1)}
	case 2:
		return Edge{Src: r.Int63n(1000), Dst: r.Int63n(1000)}
	case 3:
		return Group{Key: randQuantum(r, depth-1), Values: elems(r.Intn(4))}
	default:
		return elems(1 + r.Intn(3))
	}
}

func randString(r *rand.Rand) string {
	const alphabet = "abcdefghij κλμ\x00\n\"\\"
	runes := []rune(alphabet)
	n := r.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(runes[r.Intn(len(runes))])
	}
	return sb.String()
}

func TestBinaryCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		q := randQuantum(r, 4)
		raw, err := AppendQuantumBinary(nil, q)
		if err != nil {
			t.Fatalf("encode %#v: %v", q, err)
		}
		back, err := DecodeQuantumBinary(raw)
		if err != nil {
			t.Fatalf("decode %#v: %v", q, err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Fatalf("round trip %d: got %#v, want %#v", i, back, q)
		}
	}
}

// TestBinaryCodecMatchesJSONCodec: both codecs must decode to identical
// in-memory values, since readers auto-detect the format and downstream
// UDFs depend on exact types either way.
func TestBinaryCodecMatchesJSONCodec(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := randQuantum(r, 3)
		bin, err := AppendQuantumBinary(nil, q)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		line, err := EncodeQuantum(q)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		fromBin, err := DecodeQuantumBinary(bin)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		fromJSON, err := DecodeQuantum(line)
		if err != nil {
			t.Fatalf("json decode: %v", err)
		}
		if !reflect.DeepEqual(fromBin, fromJSON) {
			t.Fatalf("codecs disagree for %#v: binary %#v, json %#v", q, fromBin, fromJSON)
		}
	}
}

func TestBinaryCodecIntWidening(t *testing.T) {
	// Plain ints widen to int64, matching the JSON codec's decode side.
	raw, err := AppendQuantumBinary(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeQuantumBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.(int64); !ok || v != 7 {
		t.Fatalf("int decoded as %T %v, want int64 7", back, back)
	}
}

func TestDecodeQuantumBinaryCorrupt(t *testing.T) {
	good, err := AppendQuantumBinary(nil, Record{"abc", int64(5), []any{1.5, "x"}})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeQuantumBinary(good[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is rejected (a frame is exactly one quantum).
	if _, err := DecodeQuantumBinary(append(append([]byte{}, good...), 0x01)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unknown tag.
	if _, err := DecodeQuantumBinary([]byte{0xff}); err == nil {
		t.Error("unknown tag accepted")
	}
	// A corrupt huge length must not attempt the allocation.
	if _, err := DecodeQuantumBinary([]byte{binString, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Error("oversized length accepted")
	}
}

func TestReadQuantaStreamTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	enc := NewQuantaEncoder(&buf)
	for _, q := range []any{"one", "two", "three"} {
		if err := enc.Encode(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the last frame: the stream must error, not return short.
	if _, err := ReadQuantaStream(bytes.NewReader(full[:len(full)-2])); err == nil {
		t.Error("truncated stream read without error")
	}
	if got, err := ReadQuantaStream(bytes.NewReader(full)); err != nil || len(got) != 3 {
		t.Errorf("full stream: %v quanta, err %v", got, err)
	}
}

// TestReadQuantaFileLegacyJSON: files written by earlier builds (tagged
// JSON, one document per line) must still decode via auto-detection.
func TestReadQuantaFileLegacyJSON(t *testing.T) {
	in := []any{"a", Record{int64(1), "b"}, KV{Key: "k", Value: int64(2)}, nil, 1.5}
	var lines []string
	for _, q := range in {
		line, err := EncodeQuantum(q)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(line))
	}
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ReadQuantaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("legacy decode: got %#v, want %#v", out, in)
	}
}

func TestWriteQuantaFileIsBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quanta.rqb")
	in := []any{"x", int64(9), Record{1.5}}
	if err := WriteQuantaFile(path, in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(BinaryQuantaMagic)) {
		t.Fatalf("file does not start with %q: % x", BinaryQuantaMagic, raw[:8])
	}
	out, err := ReadQuantaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %#v, want %#v", out, in)
	}
}

func TestWriteQuantaFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.rqb")
	if err := WriteQuantaFile(path, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadQuantaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty file decoded to %v", out)
	}
}

// TestWriteQuantaFileAtomicOnError: an encoding failure mid-write must not
// leave a partial file behind — neither at the target path nor as a stray
// temp file.
func TestWriteQuantaFileAtomicOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.rqb")
	// Pre-existing content must survive a failed overwrite.
	if err := WriteQuantaFile(path, []any{"keep"}); err != nil {
		t.Fatal(err)
	}
	bad := []any{"ok", make(chan int)} // channels are not encodable
	if err := WriteQuantaFile(path, bad); err == nil {
		t.Fatal("encoding a channel succeeded")
	}
	out, err := ReadQuantaFile(path)
	if err != nil || !reflect.DeepEqual(out, []any{"keep"}) {
		t.Fatalf("previous content clobbered: %v, %v", out, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("stray files left after failed write: %v", names)
	}
}
