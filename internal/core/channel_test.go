package core

import (
	"math"
	"testing"
	"testing/quick"
)

// buildTestGraph wires a small conversion graph resembling the real one:
//
//	relation --scan--> collection <--collect/parallelize--> rdd
//	collection <--fetch/save--> file --load--> rdd
//	collection --to-graph--> graph
func buildTestGraph() *ConversionGraph {
	g := NewConversionGraph()
	for _, d := range []ChannelDescriptor{
		{Name: "collection", Reusable: true, AtRest: true},
		{Name: "file", Reusable: true, AtRest: true},
		{Name: "rdd", Platform: "spark", Reusable: true},
		{Name: "relation", Platform: "relstore", Reusable: true, AtRest: true},
		{Name: "graph", Platform: "graphmem", Reusable: true},
	} {
		g.AddChannel(d)
	}
	add := func(name, from, to string, fixed, per float64) {
		if err := g.AddConversion(&Conversion{Name: name, From: from, To: to, FixedCostMs: fixed, PerQuantumMs: per}); err != nil {
			panic(err)
		}
	}
	add("scan", "relation", "collection", 5, 0.001)
	add("parallelize", "collection", "rdd", 20, 0.0005)
	add("collect", "rdd", "collection", 20, 0.0005)
	add("save", "collection", "file", 2, 0.002)
	add("fetch", "file", "collection", 2, 0.002)
	add("load", "file", "rdd", 25, 0.0008)
	add("to-graph", "collection", "graph", 1, 0.001)
	return g
}

func TestFindPathDirect(t *testing.T) {
	g := buildTestGraph()
	p, err := g.FindPath("relation", "collection", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 || p.Steps[0].Name != "scan" {
		t.Fatalf("path = %v", p.Steps)
	}
	if want := 5 + 0.001*1000; math.Abs(p.CostMs-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", p.CostMs, want)
	}
}

func TestFindPathMultiHop(t *testing.T) {
	g := buildTestGraph()
	p, err := g.FindPath("relation", "rdd", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 || p.Steps[0].Name != "scan" || p.Steps[1].Name != "parallelize" {
		t.Fatalf("path = %v", p.Steps)
	}
}

func TestFindPathIdentityAndUnreachable(t *testing.T) {
	g := buildTestGraph()
	p, err := g.FindPath("rdd", "rdd", 10)
	if err != nil || len(p.Steps) != 0 || p.CostMs != 0 {
		t.Fatalf("identity path = %v, %v", p, err)
	}
	// graph has no outgoing conversions.
	if _, err := g.FindPath("graph", "collection", 10); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestFindPathPicksCheaper(t *testing.T) {
	g := buildTestGraph()
	// For large cardinality, file->rdd direct load beats file->collection->rdd
	// (fixed 25 + 0.0008n vs 2+20 + 0.0025n): crossover around n=1765.
	pBig, err := g.FindPath("file", "rdd", 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pBig.Steps) != 1 || pBig.Steps[0].Name != "load" {
		t.Fatalf("big path = %v", pBig.Steps)
	}
	pSmall, err := g.FindPath("file", "rdd", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pSmall.Steps) != 2 {
		t.Fatalf("small path should go via collection, got %v", pSmall.Steps)
	}
}

func TestFindTreeSingleTarget(t *testing.T) {
	g := buildTestGraph()
	tree, err := g.FindTree("relation", []string{"rdd"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	path, _ := g.FindPath("relation", "rdd", 1000)
	if math.Abs(tree.CostMs-path.CostMs) > 1e-9 {
		t.Errorf("tree cost %v != path cost %v", tree.CostMs, path.CostMs)
	}
	if len(tree.Edges) != 2 {
		t.Errorf("tree edges = %v", tree.Edges)
	}
}

func TestFindTreeSharesPrefix(t *testing.T) {
	g := buildTestGraph()
	// Serving both rdd and graph from relation must share the relation->
	// collection scan instead of paying for it twice.
	tree, err := g.FindTree("relation", []string{"rdd", "graph"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	scanCount := 0
	for _, e := range tree.Edges {
		if e.Name == "scan" {
			scanCount++
		}
	}
	if scanCount != 1 {
		t.Fatalf("scan appears %d times; prefix not shared: %v", scanCount, tree.Edges)
	}
	pRdd, _ := g.FindPath("relation", "rdd", 1000)
	pGraph, _ := g.FindPath("relation", "graph", 1000)
	scan, _ := g.FindPath("relation", "collection", 1000)
	wantShared := pRdd.CostMs + pGraph.CostMs - scan.CostMs
	if math.Abs(tree.CostMs-wantShared) > 1e-9 {
		t.Errorf("tree cost = %v, want %v (shared prefix)", tree.CostMs, wantShared)
	}
}

func TestFindTreeTargetEqualsRoot(t *testing.T) {
	g := buildTestGraph()
	tree, err := g.FindTree("collection", []string{"collection"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Edges) != 0 || tree.CostMs != 0 {
		t.Fatalf("trivial tree = %+v", tree)
	}
}

func TestFindTreeUnreachable(t *testing.T) {
	g := buildTestGraph()
	if _, err := g.FindTree("graph", []string{"file"}, 10); err == nil {
		t.Fatal("expected unreachable tree error")
	}
}

func TestFindTreeEdgesOrdered(t *testing.T) {
	g := buildTestGraph()
	tree, err := g.FindTree("relation", []string{"rdd", "graph", "file"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge's source channel must be the root or produced by an earlier
	// edge: the executor applies conversions in order.
	produced := map[string]bool{tree.Root: true}
	for _, e := range tree.Edges {
		if !produced[e.From] {
			t.Fatalf("edge %s consumes unproduced channel %s (order: %v)", e.Name, e.From, tree.Edges)
		}
		produced[e.To] = true
	}
	for _, target := range []string{"rdd", "graph", "file"} {
		if !produced[target] {
			t.Errorf("target %s not produced", target)
		}
	}
}

func TestFindTreeCostNeverExceedsPathSum(t *testing.T) {
	g := buildTestGraph()
	targets := [][]string{
		{"rdd"}, {"graph"}, {"rdd", "graph"}, {"rdd", "file"}, {"rdd", "graph", "file"},
	}
	f := func(cardSeed uint16, pick uint8) bool {
		card := float64(cardSeed)
		ts := targets[int(pick)%len(targets)]
		tree, err := g.FindTree("relation", ts, card)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, target := range ts {
			p, err := g.FindPath("relation", target, card)
			if err != nil {
				return false
			}
			sum += p.CostMs
		}
		return tree.CostMs <= sum+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestChannelConsume(t *testing.T) {
	reusable := NewChannel(ChannelDescriptor{Name: "c", Reusable: true}, nil, 1)
	if err := reusable.Consume(); err != nil {
		t.Fatal(err)
	}
	if err := reusable.Consume(); err != nil {
		t.Fatal("reusable channel must allow repeated consumption")
	}
	once := NewChannel(ChannelDescriptor{Name: "s"}, nil, 1)
	if err := once.Consume(); err != nil {
		t.Fatal(err)
	}
	if err := once.Consume(); err == nil {
		t.Fatal("single-use channel consumed twice without error")
	}
}

func TestAddConversionUnknownChannel(t *testing.T) {
	g := NewConversionGraph()
	g.AddChannel(ChannelDescriptor{Name: "a"})
	if err := g.AddConversion(&Conversion{Name: "x", From: "a", To: "b"}); err == nil {
		t.Fatal("expected unknown-channel error")
	}
	if err := g.AddConversion(&Conversion{Name: "x", From: "z", To: "a"}); err == nil {
		t.Fatal("expected unknown-channel error")
	}
}

func TestGraphChannelsSorted(t *testing.T) {
	g := buildTestGraph()
	chs := g.Channels()
	for i := 1; i < len(chs); i++ {
		if chs[i-1].Name >= chs[i].Name {
			t.Fatalf("channels not sorted: %v", chs)
		}
	}
	if d, ok := g.Channel("rdd"); !ok || d.Platform != "spark" {
		t.Errorf("Channel lookup = %+v, %v", d, ok)
	}
}
