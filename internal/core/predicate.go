package core

import "fmt"

// PredOp is a declarative comparison operator.
type PredOp int

// Declarative predicate comparisons.
const (
	PredEq PredOp = iota
	PredLt
	PredLe
	PredGt
	PredGe
)

func (o PredOp) String() string {
	switch o {
	case PredEq:
		return "="
	case PredLt:
		return "<"
	case PredLe:
		return "<="
	case PredGt:
		return ">"
	case PredGe:
		return ">="
	}
	return "?"
}

// Predicate is a declarative single-column comparison over Record quanta.
// Unlike an opaque UDF predicate, relational platforms can push it into
// scans and satisfy it from indexes; general-purpose platforms evaluate it
// like any predicate. Filter operators carry it in Params.Where (instead
// of, or in addition to, UDF.Pred).
type Predicate struct {
	Col   int
	Op    PredOp
	Value any
}

// Eval evaluates the predicate against a record.
func (p *Predicate) Eval(r Record) bool {
	switch v := p.Value.(type) {
	case string:
		s := r.String(p.Col)
		switch p.Op {
		case PredEq:
			return s == v
		case PredLt:
			return s < v
		case PredLe:
			return s <= v
		case PredGt:
			return s > v
		case PredGe:
			return s >= v
		}
	default:
		f := r.Float(p.Col)
		w := numOf(p.Value)
		switch p.Op {
		case PredEq:
			return f == w
		case PredLt:
			return f < w
		case PredLe:
			return f <= w
		case PredGt:
			return f > w
		case PredGe:
			return f >= w
		}
	}
	return false
}

// Fn compiles the predicate into a quantum predicate function.
func (p *Predicate) Fn() func(any) bool {
	return func(q any) bool {
		r, ok := q.(Record)
		if !ok {
			return false
		}
		return p.Eval(r)
	}
}

func (p *Predicate) String() string {
	return fmt.Sprintf("col%d %s %v", p.Col, p.Op, p.Value)
}

func numOf(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case float32:
		return float64(n)
	case int:
		return float64(n)
	case int32:
		return float64(n)
	case int64:
		return float64(n)
	}
	panic(fmt.Sprintf("core: predicate value %T is not numeric", v))
}
