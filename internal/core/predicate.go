package core

import (
	"fmt"
	"strings"
)

// PredOp is a declarative comparison operator.
type PredOp int

// Declarative predicate comparisons. PredPrefix is a string-only match
// (strings.HasPrefix); under a non-string comparison value it keeps nothing,
// like any unknown operator.
const (
	PredEq PredOp = iota
	PredLt
	PredLe
	PredGt
	PredGe
	PredPrefix
)

func (o PredOp) String() string {
	switch o {
	case PredEq:
		return "="
	case PredLt:
		return "<"
	case PredLe:
		return "<="
	case PredGt:
		return ">"
	case PredGe:
		return ">="
	case PredPrefix:
		return "^="
	}
	return "?"
}

// Predicate is a declarative single-column comparison over Record quanta —
// or, with Col == WholeQuantum, over bare scalar quanta. Unlike an opaque
// UDF predicate, relational platforms can push it into scans and satisfy it
// from indexes, and the vectorized kernels evaluate it as a per-column tight
// loop; general-purpose platforms evaluate it like any predicate. Filter
// operators carry it in Params.Where (instead of, or in addition to,
// UDF.Pred).
type Predicate struct {
	Col   int
	Op    PredOp
	Value any
}

// Eval evaluates the predicate against a record.
func (p *Predicate) Eval(r Record) bool {
	switch v := p.Value.(type) {
	case string:
		s := r.String(p.Col)
		switch p.Op {
		case PredEq:
			return s == v
		case PredLt:
			return s < v
		case PredLe:
			return s <= v
		case PredGt:
			return s > v
		case PredGe:
			return s >= v
		case PredPrefix:
			return strings.HasPrefix(s, v)
		}
	default:
		f := r.Float(p.Col)
		w := numOf(p.Value)
		switch p.Op {
		case PredEq:
			return f == w
		case PredLt:
			return f < w
		case PredLe:
			return f <= w
		case PredGt:
			return f > w
		case PredGe:
			return f >= w
		}
	}
	return false
}

// EvalQuantum evaluates the predicate against one quantum. A field
// predicate requires a Record (anything else is filtered out, never a type
// error); a WholeQuantum predicate compares the bare value itself, coercing
// exactly like the Record accessors do.
func (p *Predicate) EvalQuantum(q any) bool {
	if p.Col != WholeQuantum {
		r, ok := q.(Record)
		if !ok {
			return false
		}
		return p.Eval(r)
	}
	switch v := p.Value.(type) {
	case string:
		s, ok := q.(string)
		if !ok {
			s = fmt.Sprint(q)
		}
		switch p.Op {
		case PredEq:
			return s == v
		case PredLt:
			return s < v
		case PredLe:
			return s <= v
		case PredGt:
			return s > v
		case PredGe:
			return s >= v
		case PredPrefix:
			return strings.HasPrefix(s, v)
		}
	default:
		f, ok := toFloat(q)
		if !ok {
			panic(fmt.Sprintf("core: quantum is %T, not numeric", q))
		}
		w := numOf(p.Value)
		switch p.Op {
		case PredEq:
			return f == w
		case PredLt:
			return f < w
		case PredLe:
			return f <= w
		case PredGt:
			return f > w
		case PredGe:
			return f >= w
		}
	}
	return false
}

// Fn compiles the predicate into a quantum predicate function.
func (p *Predicate) Fn() func(any) bool {
	return func(q any) bool { return p.EvalQuantum(q) }
}

func (p *Predicate) String() string {
	if p.Col == WholeQuantum {
		return fmt.Sprintf("q %s %v", p.Op, p.Value)
	}
	return fmt.Sprintf("col%d %s %v", p.Col, p.Op, p.Value)
}

// numOf coerces a predicate comparison value to float64, sharing the
// numeric-coercion table in toFloat.
func numOf(v any) float64 {
	if f, ok := toFloat(v); ok {
		return f
	}
	panic(fmt.Sprintf("core: predicate value %T is not numeric", v))
}
