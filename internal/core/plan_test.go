package core

import (
	"strings"
	"testing"
)

// buildLinearPlan constructs source -> map -> sink.
func buildLinearPlan() (*Plan, *Operator, *Operator, *Operator) {
	p := NewPlan("linear")
	src := p.Add(&Operator{Kind: KindCollectionSource, Params: Params{Collection: []any{1, 2}}})
	m := p.Add(&Operator{Kind: KindMap, Label: "inc", UDF: UDFs{Map: func(q any) any { return q.(int) + 1 }}})
	sink := p.Add(&Operator{Kind: KindCollectionSink})
	p.Chain(src, m, sink)
	return p, src, m, sink
}

func TestPlanValidateLinear(t *testing.T) {
	p, src, m, sink := buildLinearPlan()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := m.Inputs()[0]; got != src {
		t.Errorf("map input = %v", got)
	}
	if got := m.Outputs()[0]; got != sink {
		t.Errorf("map output = %v", got)
	}
	if srcs := p.Sources(); len(srcs) != 1 || srcs[0] != src {
		t.Errorf("Sources = %v", srcs)
	}
	if sinks := p.Sinks(); len(sinks) != 1 || sinks[0] != sink {
		t.Errorf("Sinks = %v", sinks)
	}
}

func TestPlanTopoOrder(t *testing.T) {
	p := NewPlan("diamond")
	src := p.NewOperator(KindCollectionSource, "src")
	src.Params.Collection = []any{1}
	f1 := p.NewOperator(KindFilter, "f1")
	f1.UDF.Pred = func(any) bool { return true }
	f2 := p.NewOperator(KindFilter, "f2")
	f2.UDF.Pred = func(any) bool { return true }
	join := p.NewOperator(KindUnion, "u")
	sink := p.NewOperator(KindCollectionSink, "")
	p.Connect(src, f1, 0)
	p.Connect(src, f2, 0)
	p.Connect(f1, join, 0)
	p.Connect(f2, join, 1)
	p.Connect(join, sink, 0)

	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Operator]int{}
	for i, o := range order {
		pos[o] = i
	}
	if !(pos[src] < pos[f1] && pos[src] < pos[f2] && pos[f1] < pos[join] && pos[f2] < pos[join] && pos[join] < pos[sink]) {
		t.Fatalf("bad topological order: %v", order)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidateDetectsUnconnectedInput(t *testing.T) {
	p := NewPlan("bad")
	p.NewOperator(KindCollectionSource, "").Params.Collection = []any{1}
	p.NewOperator(KindMap, "orphan").UDF.Map = func(q any) any { return q }
	p.NewOperator(KindCollectionSink, "")
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error for unconnected inputs")
	}
}

func TestPlanValidateDetectsCycle(t *testing.T) {
	p := NewPlan("cycle")
	a := p.NewOperator(KindMap, "a")
	b := p.NewOperator(KindMap, "b")
	p.Connect(a, b, 0)
	p.Connect(b, a, 0)
	if _, err := p.TopoOrder(); err == nil {
		t.Fatal("expected cycle detection")
	}
}

func TestPlanValidateEmptyAndNoSink(t *testing.T) {
	if err := NewPlan("empty").Validate(); err == nil {
		t.Fatal("expected error for empty plan")
	}
	p := NewPlan("nosink")
	p.NewOperator(KindCollectionSource, "").Params.Collection = []any{1}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("expected no-sink error, got %v", err)
	}
}

func TestPlanLoopValidation(t *testing.T) {
	p := NewPlan("looped")
	src := p.NewOperator(KindCollectionSource, "init")
	src.Params.Collection = []any{0.0}
	loop := p.NewOperator(KindRepeat, "iter")
	loop.Params.Iterations = 3
	sink := p.NewOperator(KindCollectionSink, "")
	p.Chain(src, loop, sink)

	// No body yet: invalid.
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for loop without body")
	}

	body := NewPlan("body")
	in := body.NewOperator(KindCollectionSource, "loopvar")
	inc := body.NewOperator(KindMap, "inc")
	inc.UDF.Map = func(q any) any { return q.(float64) + 1 }
	body.Connect(in, inc, 0)
	body.LoopInput = in
	body.LoopOutput = inc
	loop.Body = body

	if err := p.Validate(); err != nil {
		t.Fatalf("Validate with body: %v", err)
	}

	// Zero iterations: invalid.
	loop.Params.Iterations = 0
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for Repeat without iteration count")
	}
}

func TestPlanBroadcastEdges(t *testing.T) {
	p := NewPlan("bcast")
	big := p.NewOperator(KindCollectionSource, "big")
	big.Params.Collection = []any{1, 2, 3}
	small := p.NewOperator(KindCollectionSource, "small")
	small.Params.Collection = []any{10}
	m := p.NewOperator(KindMap, "use")
	m.UDF.Map = func(q any) any { return q }
	sink := p.NewOperator(KindCollectionSink, "")
	p.Connect(big, m, 0)
	p.Broadcast(small, m)
	p.Connect(m, sink, 0)

	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if bs := m.Broadcasts(); len(bs) != 1 || bs[0] != small {
		t.Fatalf("Broadcasts = %v", bs)
	}
	// Broadcast edges participate in topological ordering.
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Operator]int{}
	for i, o := range order {
		pos[o] = i
	}
	if pos[small] > pos[m] {
		t.Fatal("broadcast producer ordered after consumer")
	}
}

func TestPlanStringRendering(t *testing.T) {
	p, _, _, _ := buildLinearPlan()
	s := p.String()
	for _, want := range []string{"RheemPlan", "CollectionSource", "Map(inc)", "CollectionSink", "<-"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestOperatorArities(t *testing.T) {
	cases := []struct {
		k       Kind
		in, out int
	}{
		{KindTextFileSource, 0, 1},
		{KindMap, 1, 1},
		{KindJoin, 2, 1},
		{KindCollectionSink, 1, 0},
		{KindRepeat, 1, 1},
	}
	for _, c := range cases {
		if c.k.InArity() != c.in || c.k.OutArity() != c.out {
			t.Errorf("%s arity = (%d,%d), want (%d,%d)", c.k, c.k.InArity(), c.k.OutArity(), c.in, c.out)
		}
	}
	if !KindTextFileSource.IsSource() || KindMap.IsSource() {
		t.Error("IsSource misclassifies")
	}
	if !KindCollectionSink.IsSink() || KindMap.IsSink() {
		t.Error("IsSink misclassifies")
	}
	if !KindRepeat.IsLoop() || !KindDoWhile.IsLoop() || KindMap.IsLoop() {
		t.Error("IsLoop misclassifies")
	}
}

func TestDefaultSelectivities(t *testing.T) {
	if s := (&Operator{Kind: KindFilter}).DefaultSelectivity(); s != 0.5 {
		t.Errorf("filter default = %v", s)
	}
	if s := (&Operator{Kind: KindMap}).DefaultSelectivity(); s != 1 {
		t.Errorf("map default = %v", s)
	}
	o := &Operator{Kind: KindFilter, Selectivity: 0.01}
	if s := o.DefaultSelectivity(); s != 0.01 {
		t.Errorf("hint not honoured: %v", s)
	}
}

func TestEstimateOutCard(t *testing.T) {
	in := []CardEstimate{ExactCard(1000), ExactCard(10)}

	cases := []struct {
		op       *Operator
		loHi     [2]int64
		multiple bool
	}{
		{&Operator{Kind: KindMap}, [2]int64{1000, 1000}, false},
		{&Operator{Kind: KindFilter}, [2]int64{500, 500}, false},
		{&Operator{Kind: KindCount}, [2]int64{1, 1}, false},
		{&Operator{Kind: KindCartesian}, [2]int64{10000, 10000}, false},
		{&Operator{Kind: KindUnion}, [2]int64{1010, 1010}, false},
		{&Operator{Kind: KindSample, Params: Params{SampleSize: 17}}, [2]int64{17, 17}, false},
		{&Operator{Kind: KindSample, Params: Params{SampleFraction: 0.1}}, [2]int64{100, 100}, false},
	}
	for _, c := range cases {
		got := c.op.EstimateOutCard(in)
		if got.Low != c.loHi[0] || got.High != c.loHi[1] {
			t.Errorf("%s estimate = %v, want %v", c.op.Kind, got, c.loHi)
		}
	}

	// Join estimates widen and carry reduced confidence.
	j := (&Operator{Kind: KindJoin}).EstimateOutCard(in)
	if j.Confidence >= 1 || j.Low > j.High {
		t.Errorf("join estimate not widened: %v", j)
	}
	// Selectivity hints override the join heuristic.
	jh := (&Operator{Kind: KindJoin, Selectivity: 0.5}).EstimateOutCard(in)
	if jh.Low != 5000 {
		t.Errorf("hinted join = %v", jh)
	}
	// Collection sources know their cardinality exactly.
	cs := (&Operator{Kind: KindCollectionSource, Params: Params{Collection: []any{1, 2, 3}}}).EstimateOutCard(nil)
	if cs.Low != 3 || cs.High != 3 || cs.Confidence != 1 {
		t.Errorf("collection source = %v", cs)
	}
	// File sources are unknown until sampled.
	fs := (&Operator{Kind: KindTextFileSource}).EstimateOutCard(nil)
	if fs.Confidence > 0.1 || fs.High <= fs.Low {
		t.Errorf("file source should be wide/uncertain: %v", fs)
	}
}

func TestRegisterKind(t *testing.T) {
	const custom = Kind("MyScope")
	RegisterKind(custom, 1, 1, func(o *Operator, in []CardEstimate) CardEstimate {
		return in[0].Scale(0.25)
	})
	ki, ok := registeredKind(custom)
	if !ok || ki.InArity != 1 {
		t.Fatalf("registeredKind = %+v, %v", ki, ok)
	}
	p := NewPlan("custom")
	src := p.NewOperator(KindCollectionSource, "")
	src.Params.Collection = []any{1}
	c := p.NewOperator(custom, "")
	sink := p.NewOperator(KindCollectionSink, "")
	p.Chain(src, c, sink)
	if err := p.Validate(); err != nil {
		t.Fatalf("plan with custom kind: %v", err)
	}
}
