package core

import (
	"reflect"
	"runtime"
	"sync"
)

// UDF symbol registry: the process-global table that lets distributed stage
// execution ship user functions by name instead of by value. Go functions
// cannot be serialized, but a fleet of rheem-server peers runs the same
// binary with the same UDF library registered at startup — so a fragment
// only needs to carry the function's fully-qualified symbol
// (runtime.FuncForPC name) and the receiving peer looks the value up in its
// own table. Registration happens as a side effect of latin.Registry's
// Register* calls, so every script-reachable UDF is automatically
// shippable.
//
// Closures are registered like any other function, but two closures created
// by the same function literal share one symbol regardless of their
// captured state; FuncEqual's code-pointer comparison cannot tell captures
// apart either. This is the same limitation the plan fingerprinter
// documents: UDFs are identified by code, not by captured data. Fleets must
// register capture-identical UDF libraries on every peer (true for
// rheem-server, which builds its registry from one function).

var udfSymbols sync.Map // symbol string -> fn any

// FuncSymbol returns the fully-qualified symbol name of a function value
// ("rheem/latin.glob..func1", "main.wordOf", ...), or "" when fn is not a
// non-nil func.
func FuncSymbol(fn any) string {
	if fn == nil {
		return ""
	}
	v := reflect.ValueOf(fn)
	if v.Kind() != reflect.Func || v.IsNil() {
		return ""
	}
	f := runtime.FuncForPC(v.Pointer())
	if f == nil {
		return ""
	}
	return f.Name()
}

// RegisterUDFSymbol records fn in the process-global symbol table and
// returns its symbol. A nil or non-func value is ignored and yields "".
func RegisterUDFSymbol(fn any) string {
	sym := FuncSymbol(fn)
	if sym == "" {
		return ""
	}
	udfSymbols.Store(sym, fn)
	return sym
}

// LookupUDFSymbol resolves a symbol previously registered in this process.
func LookupUDFSymbol(sym string) (any, bool) {
	if sym == "" {
		return nil, false
	}
	return udfSymbols.Load(sym)
}

// FuncEqual reports whether two function values share the same code
// pointer. It is how fragment encoding verifies that the registered value
// for a symbol is the very function the plan carries (captured state
// excepted — see the package comment above).
func FuncEqual(a, b any) bool {
	if a == nil || b == nil {
		return false
	}
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	if va.Kind() != reflect.Func || vb.Kind() != reflect.Func {
		return false
	}
	return va.Pointer() == vb.Pointer()
}
