package core

import (
	"os"
	"sync/atomic"
)

// Pipeline fusion: narrow, stateless, single-input operators (map, filter,
// flatmap, project) that follow each other on the same platform are compiled
// into one single-pass kernel by the engines (see
// internal/platform/driverutil/fuse.go). This file holds the pieces both the
// optimizer and the engines need: the kind eligibility predicate and the
// global kill switch, so cost estimation and execution always agree on
// whether a chain fuses.

// FusibleKind reports whether k is a narrow, stateless, single-input
// operator kind eligible for pipeline fusion. Distinct (stateful), MapPart
// (whole-partition), Sample (round-dependent) and all wide kinds are not.
func FusibleKind(k Kind) bool {
	switch k {
	case KindMap, KindFilter, KindFlatMap, KindProject:
		return true
	}
	return false
}

// fusionOff is the global fusion kill switch: 1 disables fusion everywhere
// (engines fall back to per-operator execution and the optimizer stops
// discounting chains). Seeded from RHEEM_NO_FUSE at startup.
var fusionOff atomic.Bool

func init() {
	if os.Getenv("RHEEM_NO_FUSE") != "" {
		fusionOff.Store(true)
	}
}

// FusionDisabled reports whether pipeline fusion is globally disabled
// (RHEEM_NO_FUSE, or SetFusionDisabled).
func FusionDisabled() bool { return fusionOff.Load() }

// SetFusionDisabled flips the global fusion kill switch; it exists for the
// fused-vs-unfused crosscheck and benchmarks. Returns the previous value.
func SetFusionDisabled(off bool) bool { return fusionOff.Swap(off) }
