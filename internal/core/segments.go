package core

// Batch-native data movement. A SegmentedDataset carries quanta as a
// sequence of segments — runs of boxed rows interleaved with ColumnBatches
// kept column-major — so data decoded from batch frames (shuffle files, DFS
// blocks, spill channels) reaches the vectorized kernels without a
// row round-trip: no per-row boxing at decode, no re-derivation of column
// buffers at kernel entry. It implements Dataset (iteration expands batches
// lazily), so every consumer that only understands rows keeps working;
// batch-aware engines type-assert and walk Segments() instead.

// Segment is one contiguous run of a SegmentedDataset: either boxed rows or
// a column batch carried natively. Exactly one of the fields is set.
type Segment struct {
	Rows  []any
	Batch *ColumnBatch
}

// Len returns the number of quanta in the segment.
func (s Segment) Len() int {
	if s.Batch != nil {
		return s.Batch.Len()
	}
	return len(s.Rows)
}

// AppendRows appends the segment's quanta to dst in row-major form.
func (s Segment) AppendRows(dst []any) []any {
	if s.Batch != nil {
		return s.Batch.AppendRows(dst)
	}
	return append(dst, s.Rows...)
}

// SegmentedDataset is a Dataset whose quanta live in row and column-batch
// segments, in order.
type SegmentedDataset struct {
	Segs []Segment
}

// NewSegmentedDataset wraps segments in a Dataset.
func NewSegmentedDataset(segs []Segment) *SegmentedDataset {
	return &SegmentedDataset{Segs: segs}
}

// Segments returns the underlying segments.
func (d *SegmentedDataset) Segments() []Segment { return d.Segs }

// Card returns the exact number of quanta.
func (d *SegmentedDataset) Card() int64 {
	var n int64
	for _, s := range d.Segs {
		n += int64(s.Len())
	}
	return n
}

// Rows flattens the dataset to row-major quanta.
func (d *SegmentedDataset) Rows() []any {
	out := make([]any, 0, d.Card())
	for _, s := range d.Segs {
		out = s.AppendRows(out)
	}
	return out
}

// Open returns a row iterator; batch segments are expanded one segment at a
// time as iteration reaches them.
func (d *SegmentedDataset) Open() Iterator {
	return &segmentIter{segs: d.Segs}
}

type segmentIter struct {
	segs []Segment
	cur  []any
	pos  int
}

func (it *segmentIter) Next() (any, bool) {
	for it.pos >= len(it.cur) {
		if len(it.segs) == 0 {
			return nil, false
		}
		s := it.segs[0]
		it.segs = it.segs[1:]
		it.pos = 0
		if s.Batch != nil {
			it.cur = s.Batch.AppendRows(nil)
		} else {
			it.cur = s.Rows
		}
	}
	v := it.cur[it.pos]
	it.pos++
	return v, true
}
