package core

import (
	"fmt"
	"sort"
)

// Registry is the system catalog: the registered platform drivers, their
// channels and conversions (forming the channel conversion graph), and the
// operator mapping registry. Plugging a new platform into the system is one
// Register call (extensibility is a first-class citizen: O(n), not O(nm)).
type Registry struct {
	drivers  map[string]Driver
	Mappings *MappingRegistry
	Graph    *ConversionGraph
}

// NewRegistry creates an empty registry with the platform-neutral channels
// pre-registered (driver collections and files exist independently of any
// platform).
func NewRegistry() *Registry {
	r := &Registry{
		drivers:  map[string]Driver{},
		Mappings: NewMappingRegistry(),
		Graph:    NewConversionGraph(),
	}
	r.Graph.AddChannel(CollectionChannel)
	r.Graph.AddChannel(FileChannel)
	return r
}

// Platform-neutral channel descriptors.
var (
	// CollectionChannel is an in-memory driver-side collection
	// (*SliceDataset payload): reusable, at rest.
	CollectionChannel = ChannelDescriptor{Name: "collection", Reusable: true, AtRest: true}
	// FileChannel is a local file of encoded quanta (path payload).
	FileChannel = ChannelDescriptor{Name: "file", Reusable: true, AtRest: true}
)

// Register plugs a platform driver into the system: its channels join the
// conversion graph, its conversions become edges, and its mappings join the
// mapping registry.
func (r *Registry) Register(d Driver) error {
	name := d.Name()
	if _, dup := r.drivers[name]; dup {
		return fmt.Errorf("core: platform %q already registered", name)
	}
	r.drivers[name] = d
	for _, cd := range d.ChannelDescriptors() {
		r.Graph.AddChannel(cd)
	}
	for _, cv := range d.Conversions() {
		if err := r.Graph.AddConversion(cv); err != nil {
			return fmt.Errorf("core: platform %q: %w", name, err)
		}
	}
	d.RegisterMappings(r.Mappings)
	return nil
}

// Driver returns the driver registered under name.
func (r *Registry) Driver(name string) (Driver, error) {
	d, ok := r.drivers[name]
	if !ok {
		return nil, fmt.Errorf("core: no platform %q registered", name)
	}
	return d, nil
}

// Drivers returns all registered drivers sorted by name.
func (r *Registry) Drivers() []Driver {
	names := make([]string, 0, len(r.drivers))
	for n := range r.drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Driver, len(names))
	for i, n := range names {
		out[i] = r.drivers[n]
	}
	return out
}

// StartupCostMs returns the fixed per-job startup cost of a platform, zero
// when the driver declares none.
func (r *Registry) StartupCostMs(platform string) float64 {
	if d, ok := r.drivers[platform]; ok {
		if sc, ok := d.(StartupCoster); ok {
			return sc.StartupCostMs()
		}
	}
	return 0
}
