package core

import "fmt"

// NumOp is a declarative arithmetic operator for MapExpr.
type NumOp int

// Declarative numeric map operations.
const (
	NumAdd NumOp = iota
	NumSub
	NumMul
)

func (o NumOp) String() string {
	switch o {
	case NumAdd:
		return "+"
	case NumSub:
		return "-"
	case NumMul:
		return "*"
	}
	return "?"
}

// WholeQuantum, used as the Col of a MapExpr or Predicate, addresses the
// quantum itself (a bare scalar) rather than a record field.
const WholeQuantum = -1

// MapExpr is a declarative single-column numeric map: field Col (or the
// whole scalar quantum) combined with Operand under Op. Like Params.Where it
// gives the system a transparent form of a UDF: the vectorized kernel
// compiler runs it as a per-column tight loop instead of a per-quantum
// closure call. Map operators carry it in UDF.MapExpr alongside the
// equivalent opaque closure (Fn), which every row-at-a-time path uses.
//
// Arithmetic stays in the int64 domain when both the value and the operand
// are integral, and is carried out in float64 otherwise (coercing like
// Record.Float).
type MapExpr struct {
	Col     int
	Op      NumOp
	Operand any
}

func (e *MapExpr) String() string {
	if e.Col == WholeQuantum {
		return fmt.Sprintf("q %s %v", e.Op, e.Operand)
	}
	return fmt.Sprintf("col%d %s %v", e.Col, e.Op, e.Operand)
}

// Fn compiles the expression into a quantum map function.
func (e *MapExpr) Fn() func(any) any {
	return func(q any) any { return e.Apply(q) }
}

// Apply evaluates the expression against one quantum — the exact semantics
// the vectorized path reproduces column-wise. Field expressions require a
// Record and return a fresh copy with the field replaced.
func (e *MapExpr) Apply(q any) any {
	if e.Col == WholeQuantum {
		return e.applyValue(q)
	}
	r, ok := q.(Record)
	if !ok {
		panic(fmt.Sprintf("core: map expr %s: quantum %T is not a Record", e, q))
	}
	out := r.Copy()
	out[e.Col] = e.applyValue(r[e.Col])
	return out
}

func (e *MapExpr) applyValue(v any) any {
	if iv, ok := v.(int64); ok {
		if w, ok := intOperand(e.Operand); ok {
			switch e.Op {
			case NumAdd:
				return iv + w
			case NumSub:
				return iv - w
			case NumMul:
				return iv * w
			}
			panic(fmt.Sprintf("core: map expr %s: unknown op", e))
		}
	}
	f, ok := toFloat(v)
	if !ok {
		panic(fmt.Sprintf("core: map expr %s: value %T is not numeric", e, v))
	}
	w, ok := toFloat(e.Operand)
	if !ok {
		panic(fmt.Sprintf("core: map expr %s: operand %T is not numeric", e, e.Operand))
	}
	switch e.Op {
	case NumAdd:
		return f + w
	case NumSub:
		return f - w
	case NumMul:
		return f * w
	}
	panic(fmt.Sprintf("core: map expr %s: unknown op", e))
}

// AggOp is a declarative aggregation operator for ReduceExpr.
type AggOp int

// Declarative aggregation operations.
const (
	AggSum AggOp = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

func (o AggOp) String() string {
	switch o {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// AggSpec is one aggregate of a ReduceExpr: Op applied to record field Col.
// AggCount ignores Col (use WholeQuantum by convention).
type AggSpec struct {
	Op  AggOp
	Col int
}

func (a AggSpec) String() string {
	if a.Op == AggCount {
		return "count(*)"
	}
	return fmt.Sprintf("%s(col%d)", a.Op, a.Col)
}

// ReduceExpr is a declarative grouped aggregation over Records: group by the
// GroupCols fields, apply each AggSpec to its field. Like Params.Where and
// MapExpr it gives the system a transparent form of a reduce-by UDF: the
// vectorized kernel absorbs ColumnBatches through typed per-column
// accumulator loops, while every row-at-a-time path folds quanta through the
// same AggState — both orders of evaluation are identical by construction,
// so the columnar kill switch never changes sink output.
//
// Output records are [group values..., one value per AggSpec] in
// first-occurrence group order. Sum/min/max stay in the int64 domain until a
// non-int64 numeric value arrives (the MapExpr migration rule); count is
// int64; avg is float64.
type ReduceExpr struct {
	GroupCols []int
	Aggs      []AggSpec
}

func (e *ReduceExpr) String() string {
	s := "by("
	for i, c := range e.GroupCols {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("col%d", c)
	}
	s += ")"
	for _, a := range e.Aggs {
		s += " " + a.String()
	}
	return s
}

// Valid reports whether the expression is well-formed: at least one group
// column and one aggregate, all referenced fields non-negative.
func (e *ReduceExpr) Valid() error {
	if len(e.GroupCols) == 0 {
		return fmt.Errorf("core: reduce expr %s: no group columns", e)
	}
	if len(e.Aggs) == 0 {
		return fmt.Errorf("core: reduce expr %s: no aggregates", e)
	}
	for _, c := range e.GroupCols {
		if c < 0 {
			return fmt.Errorf("core: reduce expr %s: negative group column %d", e, c)
		}
	}
	for _, a := range e.Aggs {
		if a.Col < 0 && a.Op != AggCount {
			return fmt.Errorf("core: reduce expr %s: negative aggregate column %d", e, a.Col)
		}
	}
	return nil
}

// KeyFn compiles the group-key extractor over input records: the bare field
// value for a single group column, a Record of the fields otherwise. It is
// installed as UDF.Key so key-aware machinery (partitioners, the optimizer)
// sees the declarative reduce-by like any other.
func (e *ReduceExpr) KeyFn() func(any) any {
	cols := e.GroupCols
	if len(cols) == 1 {
		c := cols[0]
		return func(q any) any { return q.(Record)[c] }
	}
	return func(q any) any {
		r := q.(Record)
		k := make(Record, len(cols))
		for i, c := range cols {
			k[i] = r[c]
		}
		return k
	}
}

// PartialKeyFn compiles the group-key extractor over partial records, whose
// group values sit at positions 0..len(GroupCols)-1 (see AggState.Partials).
// Exchanges between the partial and merge phases hash on it.
func (e *ReduceExpr) PartialKeyFn() func(any) any {
	k := len(e.GroupCols)
	if k == 1 {
		return func(q any) any { return q.(Record)[0] }
	}
	return func(q any) any {
		r := q.(Record)
		return Record(r[:k:k])
	}
}

// intOperand reports v as int64 when it is an integral Go type, keeping
// int64-domain arithmetic transparent to both execution paths.
func intOperand(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	}
	return 0, false
}
