package core

import "fmt"

// NumOp is a declarative arithmetic operator for MapExpr.
type NumOp int

// Declarative numeric map operations.
const (
	NumAdd NumOp = iota
	NumSub
	NumMul
)

func (o NumOp) String() string {
	switch o {
	case NumAdd:
		return "+"
	case NumSub:
		return "-"
	case NumMul:
		return "*"
	}
	return "?"
}

// WholeQuantum, used as the Col of a MapExpr or Predicate, addresses the
// quantum itself (a bare scalar) rather than a record field.
const WholeQuantum = -1

// MapExpr is a declarative single-column numeric map: field Col (or the
// whole scalar quantum) combined with Operand under Op. Like Params.Where it
// gives the system a transparent form of a UDF: the vectorized kernel
// compiler runs it as a per-column tight loop instead of a per-quantum
// closure call. Map operators carry it in UDF.MapExpr alongside the
// equivalent opaque closure (Fn), which every row-at-a-time path uses.
//
// Arithmetic stays in the int64 domain when both the value and the operand
// are integral, and is carried out in float64 otherwise (coercing like
// Record.Float).
type MapExpr struct {
	Col     int
	Op      NumOp
	Operand any
}

func (e *MapExpr) String() string {
	if e.Col == WholeQuantum {
		return fmt.Sprintf("q %s %v", e.Op, e.Operand)
	}
	return fmt.Sprintf("col%d %s %v", e.Col, e.Op, e.Operand)
}

// Fn compiles the expression into a quantum map function.
func (e *MapExpr) Fn() func(any) any {
	return func(q any) any { return e.Apply(q) }
}

// Apply evaluates the expression against one quantum — the exact semantics
// the vectorized path reproduces column-wise. Field expressions require a
// Record and return a fresh copy with the field replaced.
func (e *MapExpr) Apply(q any) any {
	if e.Col == WholeQuantum {
		return e.applyValue(q)
	}
	r, ok := q.(Record)
	if !ok {
		panic(fmt.Sprintf("core: map expr %s: quantum %T is not a Record", e, q))
	}
	out := r.Copy()
	out[e.Col] = e.applyValue(r[e.Col])
	return out
}

func (e *MapExpr) applyValue(v any) any {
	if iv, ok := v.(int64); ok {
		if w, ok := intOperand(e.Operand); ok {
			switch e.Op {
			case NumAdd:
				return iv + w
			case NumSub:
				return iv - w
			case NumMul:
				return iv * w
			}
			panic(fmt.Sprintf("core: map expr %s: unknown op", e))
		}
	}
	f, ok := toFloat(v)
	if !ok {
		panic(fmt.Sprintf("core: map expr %s: value %T is not numeric", e, v))
	}
	w, ok := toFloat(e.Operand)
	if !ok {
		panic(fmt.Sprintf("core: map expr %s: operand %T is not numeric", e, e.Operand))
	}
	switch e.Op {
	case NumAdd:
		return f + w
	case NumSub:
		return f - w
	case NumMul:
		return f * w
	}
	panic(fmt.Sprintf("core: map expr %s: unknown op", e))
}

// intOperand reports v as int64 when it is an integral Go type, keeping
// int64-domain arithmetic transparent to both execution paths.
func intOperand(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	}
	return 0, false
}
