package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Binary quantum codec, the default wire format on every data-movement hot
// path (file channels, DFS shuffle partitions, cache spill files). Values
// carry a one-byte type tag followed by a compact payload: varints for
// integers and lengths, raw 8-byte IEEE 754 for floats, recursively encoded
// elements for composites. Unlike the tagged-JSON codec it needs no
// per-field json.Marshal round-trips and no intermediate RawMessage
// allocations; encoders append into caller-supplied buffers so steady-state
// encoding is allocation-free.
//
// Streams of quanta (files, DFS objects) are length-prefixed frames — a
// uvarint payload length before each encoded quantum — behind the
// BinaryQuantaMagic header, replacing the line-delimited records of the
// JSON codec. Readers auto-detect the header and fall back to JSON lines,
// so data written before the binary codec existed still decodes.

// Type tags. A decoded stream must reproduce exactly the types the JSON
// codec would: ints (any width) come back as int64, unknown types take the
// JSON fallback and decode best-effort.
const (
	binNil    = 0x00
	binFalse  = 0x01
	binTrue   = 0x02
	binInt    = 0x03 // zigzag varint
	binFloat  = 0x04 // 8-byte little-endian IEEE 754
	binString = 0x05 // uvarint length + bytes
	binFloats = 0x06 // uvarint count + 8 bytes each
	binRecord = 0x07 // uvarint count + encoded elements
	binSlice  = 0x08 // uvarint count + encoded elements
	binKV     = 0x09 // encoded key + encoded value
	binEdge   = 0x0a // zigzag src + zigzag dst
	binGroup  = 0x0b // encoded key + uvarint count + encoded values
	binJSON   = 0x0c // uvarint length + plain JSON (foreign types, best effort)
	binBatch  = 0x0d // column-wise batch: flags + nrows + ncols + columns
	binDict   = 0x0e // dictionary string column (inside binBatch): dict + codes
)

// BinaryQuantaMagic heads every binary quanta stream. The JSON codec always
// emits '{' as a record's first byte, so the first byte of a stream
// unambiguously selects the decoder.
const BinaryQuantaMagic = "RQB1"

// AppendQuantumBinary appends the binary encoding of one quantum to buf and
// returns the extended buffer. Reusing the returned buffer across calls
// (buf[:0]) keeps steady-state encoding allocation-free.
func AppendQuantumBinary(buf []byte, q any) ([]byte, error) {
	switch v := q.(type) {
	case nil:
		return append(buf, binNil), nil
	case bool:
		if v {
			return append(buf, binTrue), nil
		}
		return append(buf, binFalse), nil
	case int:
		return appendZigzag(append(buf, binInt), int64(v)), nil
	case int64:
		return appendZigzag(append(buf, binInt), v), nil
	case float64:
		buf = append(buf, binFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)), nil
	case string:
		buf = binary.AppendUvarint(append(buf, binString), uint64(len(v)))
		return append(buf, v...), nil
	case []float64:
		buf = binary.AppendUvarint(append(buf, binFloats), uint64(len(v)))
		for _, f := range v {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf, nil
	case Record:
		return appendElems(append(buf, binRecord), v)
	case []any:
		return appendElems(append(buf, binSlice), v)
	case KV:
		buf, err := AppendQuantumBinary(append(buf, binKV), v.Key)
		if err != nil {
			return nil, err
		}
		return AppendQuantumBinary(buf, v.Value)
	case Edge:
		return appendZigzag(appendZigzag(append(buf, binEdge), v.Src), v.Dst), nil
	case Group:
		buf, err := AppendQuantumBinary(append(buf, binGroup), v.Key)
		if err != nil {
			return nil, err
		}
		return appendElems(buf, v.Values)
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("core: binary-encode quantum %T: %w", q, err)
		}
		buf = binary.AppendUvarint(append(buf, binJSON), uint64(len(raw)))
		return append(buf, raw...), nil
	}
}

func appendElems(buf []byte, vs []any) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	var err error
	for _, v := range vs {
		if buf, err = AppendQuantumBinary(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendZigzag(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, uint64(v<<1)^uint64(v>>63))
}

// EncodeQuantumBinary serializes one quantum into a fresh buffer.
func EncodeQuantumBinary(q any) ([]byte, error) { return AppendQuantumBinary(nil, q) }

// ErrCorruptQuantum reports a malformed or truncated binary quantum.
var ErrCorruptQuantum = errors.New("core: corrupt binary quantum")

// DecodeQuantumBinary parses one binary-encoded quantum. The encoding must
// occupy the whole input; trailing bytes are corruption, never silently
// ignored.
func DecodeQuantumBinary(data []byte) (any, error) {
	q, rest, err := decodeQuantumBinary(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptQuantum, len(rest))
	}
	return q, nil
}

func decodeQuantumBinary(data []byte) (any, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("%w: empty input", ErrCorruptQuantum)
	}
	tag, data := data[0], data[1:]
	switch tag {
	case binNil:
		return nil, data, nil
	case binFalse:
		return false, data, nil
	case binTrue:
		return true, data, nil
	case binInt:
		v, rest, err := decodeZigzag(data)
		return v, rest, err
	case binFloat:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("%w: short float", ErrCorruptQuantum)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
	case binString:
		n, rest, err := decodeLen(data, 1)
		if err != nil {
			return nil, nil, err
		}
		return string(rest[:n]), rest[n:], nil
	case binFloats:
		n, rest, err := decodeLen(data, 8)
		if err != nil {
			return nil, nil, err
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return out, rest[8*n:], nil
	case binRecord:
		vs, rest, err := decodeElems(data)
		if err != nil {
			return nil, nil, err
		}
		return Record(vs), rest, nil
	case binSlice:
		vs, rest, err := decodeElems(data)
		if err != nil {
			return nil, nil, err
		}
		return vs, rest, nil
	case binKV:
		key, rest, err := decodeQuantumBinary(data)
		if err != nil {
			return nil, nil, err
		}
		val, rest, err := decodeQuantumBinary(rest)
		if err != nil {
			return nil, nil, err
		}
		return KV{Key: key, Value: val}, rest, nil
	case binEdge:
		src, rest, err := decodeZigzag(data)
		if err != nil {
			return nil, nil, err
		}
		dst, rest, err := decodeZigzag(rest)
		if err != nil {
			return nil, nil, err
		}
		return Edge{Src: src, Dst: dst}, rest, nil
	case binGroup:
		key, rest, err := decodeQuantumBinary(data)
		if err != nil {
			return nil, nil, err
		}
		vals, rest, err := decodeElems(rest)
		if err != nil {
			return nil, nil, err
		}
		if vals == nil {
			vals = []any{}
		}
		return Group{Key: key, Values: vals}, rest, nil
	case binJSON:
		n, rest, err := decodeLen(data, 1)
		if err != nil {
			return nil, nil, err
		}
		var v any
		if err := json.Unmarshal(rest[:n], &v); err != nil {
			return nil, nil, fmt.Errorf("%w: embedded JSON: %v", ErrCorruptQuantum, err)
		}
		return v, rest[n:], nil
	case binBatch:
		return decodeColumnBatch(data)
	default:
		return nil, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrCorruptQuantum, tag)
	}
}

func decodeElems(data []byte) ([]any, []byte, error) {
	n, rest, err := decodeLen(data, 1)
	if err != nil {
		return nil, nil, err
	}
	out := make([]any, n)
	for i := range out {
		if out[i], rest, err = decodeQuantumBinary(rest); err != nil {
			return nil, nil, err
		}
	}
	return out, rest, nil
}

// decodeLen reads a uvarint count and verifies that count*elemSize payload
// bytes follow, guarding slice allocations against corrupt lengths.
func decodeLen(data []byte, elemSize int) (int, []byte, error) {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint length", ErrCorruptQuantum)
	}
	rest := data[w:]
	if n > uint64(len(rest)/elemSize) {
		return 0, nil, fmt.Errorf("%w: length %d exceeds remaining input", ErrCorruptQuantum, n)
	}
	return int(n), rest, nil
}

func decodeZigzag(data []byte) (int64, []byte, error) {
	u, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorruptQuantum)
	}
	return int64(u>>1) ^ -int64(u&1), data[w:], nil
}

// --- column-wise batches --------------------------------------------------

// Batch framing limits. Stream writers pack runs of batchable rows into one
// column-wise frame of up to CodecBatchRows rows; runs shorter than
// minBatchRows stay row-framed (the per-batch header would outweigh the
// contiguity win).
const (
	CodecBatchRows = 4096
	minBatchRows   = 64
)

// Decode guards against corrupt batch headers demanding absurd allocations.
// Our encoder never exceeds CodecBatchRows rows; the caps leave generous
// slack for foreign writers.
const (
	maxBatchRows = 1 << 20
	maxBatchCols = 1 << 16
)

// AppendColumnBatchBinary appends the column-wise encoding of a batch: the
// binBatch tag, a flags byte (bit 0: scalar), row and column counts, then
// each column as a type byte, an optional validity bitmap, and a contiguous
// payload (zigzag varints, raw floats, length-prefixed strings, packed bool
// bits, or recursively encoded escape values).
func AppendColumnBatchBinary(buf []byte, b *ColumnBatch) ([]byte, error) {
	buf = append(buf, binBatch)
	var flags byte
	if b.scalar {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(b.n))
	buf = binary.AppendUvarint(buf, uint64(len(b.Cols)))
	for _, col := range b.Cols {
		if col.DictEncoded() {
			buf = append(buf, binDict)
		} else {
			buf = append(buf, byte(col.Type))
		}
		if col.Valid != nil {
			buf = append(buf, 1)
			for _, w := range col.Valid.Words() {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		} else {
			buf = append(buf, 0)
		}
		if col.DictEncoded() {
			// Dictionary frame: the distinct values once, then one uvarint
			// code per row — low-cardinality string columns ship a fraction
			// of their plain size.
			buf = binary.AppendUvarint(buf, uint64(len(col.Dict)))
			for _, s := range col.Dict {
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
			for _, code := range col.Codes {
				buf = binary.AppendUvarint(buf, uint64(code))
			}
			continue
		}
		switch col.Type {
		case ColInt64:
			for _, v := range col.Ints {
				buf = appendZigzag(buf, v)
			}
		case ColFloat64:
			for _, v := range col.Floats {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case ColString:
			for _, s := range col.Strs {
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		case ColBool:
			var cur byte
			for i, v := range col.Bools {
				if v {
					cur |= 1 << (uint(i) & 7)
				}
				if i&7 == 7 {
					buf = append(buf, cur)
					cur = 0
				}
			}
			if b.n&7 != 0 {
				buf = append(buf, cur)
			}
		case ColAny:
			var err error
			for _, v := range col.Anys {
				if buf, err = AppendQuantumBinary(buf, v); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("core: binary-encode batch: unknown column type %d", col.Type)
		}
	}
	return buf, nil
}

func decodeColumnBatch(data []byte) (any, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("%w: short batch header", ErrCorruptQuantum)
	}
	flags, data := data[0], data[1:]
	nr, w := binary.Uvarint(data)
	if w <= 0 || nr > maxBatchRows {
		return nil, nil, fmt.Errorf("%w: batch row count", ErrCorruptQuantum)
	}
	data = data[w:]
	nc, w := binary.Uvarint(data)
	if w <= 0 || nc > maxBatchCols {
		return nil, nil, fmt.Errorf("%w: batch column count", ErrCorruptQuantum)
	}
	data = data[w:]
	scalar := flags&1 != 0
	if scalar && nc != 1 {
		return nil, nil, fmt.Errorf("%w: scalar batch with %d columns", ErrCorruptQuantum, nc)
	}
	n := int(nr)
	b := &ColumnBatch{n: n, scalar: scalar, Cols: make([]*Column, nc), dirty: make([]bool, nc)}
	for c := range b.Cols {
		if len(data) < 2 {
			return nil, nil, fmt.Errorf("%w: short column header", ErrCorruptQuantum)
		}
		col := &Column{Type: ColType(data[0])}
		hasValid := data[1]
		data = data[2:]
		if hasValid == 1 {
			nw := (n + 63) / 64
			if len(data) < 8*nw {
				return nil, nil, fmt.Errorf("%w: short validity bitmap", ErrCorruptQuantum)
			}
			words := make([]uint64, nw)
			for i := range words {
				words[i] = binary.LittleEndian.Uint64(data[8*i:])
			}
			col.Valid = BitsetFromWords(words, n)
			data = data[8*nw:]
		} else if hasValid != 0 {
			return nil, nil, fmt.Errorf("%w: bad validity flag", ErrCorruptQuantum)
		}
		var err error
		if byte(col.Type) == binDict {
			// Dictionary string column: distinct values, then one code per
			// row, each checked against the dictionary bound.
			col.Type = ColString
			ds, w := binary.Uvarint(data)
			if w <= 0 || ds > maxBatchRows {
				return nil, nil, fmt.Errorf("%w: batch dictionary size", ErrCorruptQuantum)
			}
			data = data[w:]
			col.Dict = make([]string, ds)
			for i := range col.Dict {
				sn, rest, err := decodeLen(data, 1)
				if err != nil {
					return nil, nil, err
				}
				col.Dict[i] = string(rest[:sn])
				data = rest[sn:]
			}
			col.Codes = make([]uint32, n)
			for i := range col.Codes {
				code, w := binary.Uvarint(data)
				if w <= 0 || code >= ds {
					return nil, nil, fmt.Errorf("%w: batch dictionary code", ErrCorruptQuantum)
				}
				col.Codes[i] = uint32(code)
				data = data[w:]
			}
			b.Cols[c] = col
			continue
		}
		switch col.Type {
		case ColInt64:
			col.Ints = make([]int64, n)
			for i := range col.Ints {
				if col.Ints[i], data, err = decodeZigzag(data); err != nil {
					return nil, nil, err
				}
			}
		case ColFloat64:
			if len(data) < 8*n {
				return nil, nil, fmt.Errorf("%w: short float column", ErrCorruptQuantum)
			}
			col.Floats = make([]float64, n)
			for i := range col.Floats {
				col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			}
			data = data[8*n:]
		case ColString:
			col.Strs = make([]string, n)
			for i := range col.Strs {
				sn, rest, err := decodeLen(data, 1)
				if err != nil {
					return nil, nil, err
				}
				col.Strs[i] = string(rest[:sn])
				data = rest[sn:]
			}
		case ColBool:
			nb := (n + 7) / 8
			if len(data) < nb {
				return nil, nil, fmt.Errorf("%w: short bool column", ErrCorruptQuantum)
			}
			col.Bools = make([]bool, n)
			for i := range col.Bools {
				col.Bools[i] = data[i>>3]&(1<<(uint(i)&7)) != 0
			}
			data = data[nb:]
		case ColAny:
			col.Anys = make([]any, n)
			for i := range col.Anys {
				if col.Anys[i], data, err = decodeQuantumBinary(data); err != nil {
					return nil, nil, err
				}
			}
		default:
			return nil, nil, fmt.Errorf("%w: unknown column type %d", ErrCorruptQuantum, col.Type)
		}
		b.Cols[c] = col
	}
	return b, data, nil
}

// TryAppendBatch encodes chunk as a single column-wise batch value when the
// chunk is batchable and columnar encoding is enabled; ok reports whether
// the batch encoding was taken (false falls back to per-quantum frames).
func TryAppendBatch(buf []byte, chunk []any) (out []byte, ok bool, err error) {
	if ColumnarDisabled() || len(chunk) < minBatchRows {
		return buf, false, nil
	}
	b, okB := BatchFromRows(chunk)
	if !okB {
		return buf, false, nil
	}
	out, err = AppendColumnBatchBinary(buf, b)
	if err != nil {
		return buf, false, err
	}
	return out, true, nil
}

// --- pooled encode buffers ------------------------------------------------

// Pooled scratch buffers for the binary-encode hot paths (DFS frame writes,
// cache spills, shuffles): callers borrow one buffer for the duration of an
// encode loop instead of growing a fresh slice per call site.
var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<12); return &b }}

// GetEncodeBuf borrows a reusable encode buffer from the pool. Pass the
// pointer back to PutEncodeBuf when done.
func GetEncodeBuf() *[]byte { return encBufPool.Get().(*[]byte) }

// PutEncodeBuf returns a buffer to the pool. Oversized buffers are dropped
// so one huge quantum doesn't pin memory across the process lifetime.
func PutEncodeBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	encBufPool.Put(b)
}

// --- framed streams ------------------------------------------------------

// QuantaEncoder writes a framed binary quanta stream: the magic header
// followed by one uvarint-length-prefixed frame per quantum. The encode
// buffer is reused across quanta.
type QuantaEncoder struct {
	w       *bufio.Writer
	scratch []byte
	lenBuf  [binary.MaxVarintLen64]byte
	started bool
}

// NewQuantaEncoder wraps w in a framed binary quanta stream writer.
func NewQuantaEncoder(w io.Writer) *QuantaEncoder {
	return &QuantaEncoder{w: bufio.NewWriterSize(w, 1<<16)}
}

// Encode appends one quantum to the stream.
func (e *QuantaEncoder) Encode(q any) error {
	buf, err := AppendQuantumBinary(e.scratch[:0], q)
	if err != nil {
		return err
	}
	e.scratch = buf
	return e.writeFrame(buf)
}

// EncodeSlice appends a slice of quanta to the stream, packing runs of
// batchable rows into column-wise batch frames of up to CodecBatchRows rows
// each; non-batchable runs (and everything when columnar is disabled) fall
// back to one frame per quantum. Readers expand batch frames transparently,
// so the two layouts are interchangeable on the wire.
func (e *QuantaEncoder) EncodeSlice(quanta []any) error {
	for start := 0; start < len(quanta); start += CodecBatchRows {
		end := min(start+CodecBatchRows, len(quanta))
		chunk := quanta[start:end]
		buf, ok, err := TryAppendBatch(e.scratch[:0], chunk)
		if err != nil {
			return err
		}
		if ok {
			e.scratch = buf
			if err := e.writeFrame(buf); err != nil {
				return err
			}
			continue
		}
		for _, q := range chunk {
			if err := e.Encode(q); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *QuantaEncoder) writeFrame(payload []byte) error {
	if !e.started {
		e.started = true
		if _, err := e.w.WriteString(BinaryQuantaMagic); err != nil {
			return err
		}
	}
	n := binary.PutUvarint(e.lenBuf[:], uint64(len(payload)))
	if _, err := e.w.Write(e.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := e.w.Write(payload); err != nil {
		return err
	}
	addCodecBytes(n + len(payload))
	return nil
}

// Flush completes the stream. An empty stream still gets its magic header,
// so a zero-quanta file reads back as binary (not as empty JSON lines).
func (e *QuantaEncoder) Flush() error {
	if !e.started {
		e.started = true
		if _, err := e.w.WriteString(BinaryQuantaMagic); err != nil {
			return err
		}
	}
	return e.w.Flush()
}

// WriteQuantaStream encodes quanta as a framed binary stream on w,
// column-batching runs of batchable rows (see EncodeSlice).
func WriteQuantaStream(w io.Writer, quanta []any) error {
	enc := NewQuantaEncoder(w)
	if err := enc.EncodeSlice(quanta); err != nil {
		return err
	}
	return enc.Flush()
}

// ReadQuantaStream decodes a quanta stream, auto-detecting the format: the
// binary magic selects frame decoding, anything else is read as legacy
// tagged-JSON lines (the format every quanta file used before the binary
// codec), so old data keeps decoding.
func ReadQuantaStream(r io.Reader) ([]any, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(BinaryQuantaMagic))
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("core: read quanta stream: %w", err)
	}
	if string(head) == BinaryQuantaMagic {
		br.Discard(len(BinaryQuantaMagic))
		return readBinaryFrames(br)
	}
	// Legacy JSON lines (also the empty-file case).
	var out []any
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		q, err := DecodeQuantum(sc.Bytes())
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: scan quanta stream: %w", err)
	}
	return out, nil
}

func readBinaryFrames(br *bufio.Reader) ([]any, error) {
	segs, err := readBinarySegments(br)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, s := range segs {
		out = s.AppendRows(out)
	}
	return out, nil
}

// readBinarySegments decodes the stream's frames, keeping batch frames
// column-major and coalescing consecutive row frames into one segment.
func readBinarySegments(br *bufio.Reader) ([]Segment, error) {
	var segs []Segment
	var rows []any
	flushRows := func() {
		if len(rows) > 0 {
			segs = append(segs, Segment{Rows: rows})
			rows = nil
		}
	}
	var frame []byte
	for {
		n, err := binary.ReadUvarint(br)
		if errors.Is(err, io.EOF) {
			flushRows()
			return segs, nil // clean end between frames
		}
		if err != nil {
			return nil, fmt.Errorf("%w: frame length: %v", ErrCorruptQuantum, err)
		}
		if n > 1<<31 {
			return nil, fmt.Errorf("%w: frame length %d", ErrCorruptQuantum, n)
		}
		if uint64(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("%w: truncated frame: %v", ErrCorruptQuantum, err)
		}
		addCodecBytes(int(n))
		q, err := DecodeQuantumBinary(frame)
		if err != nil {
			return nil, err
		}
		if cb, ok := q.(*ColumnBatch); ok {
			flushRows()
			segs = append(segs, Segment{Batch: cb})
			continue
		}
		rows = append(rows, q)
	}
}

// ReadQuantaStreamSegments decodes a quanta stream like ReadQuantaStream but
// keeps column-batch frames as native segments instead of expanding them to
// rows, so batch-aware consumers move columns end to end. Legacy JSON-lines
// streams come back as one row segment.
func ReadQuantaStreamSegments(r io.Reader) ([]Segment, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(BinaryQuantaMagic))
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("core: read quanta stream: %w", err)
	}
	if string(head) == BinaryQuantaMagic {
		br.Discard(len(BinaryQuantaMagic))
		return readBinarySegments(br)
	}
	rows, err := ReadQuantaStream(&peekedReader{br: br})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return []Segment{{Rows: rows}}, nil
}

// peekedReader re-presents a buffered reader as a plain reader so the legacy
// path of ReadQuantaStream can re-detect the format from the same bytes.
type peekedReader struct{ br *bufio.Reader }

func (p *peekedReader) Read(b []byte) (int, error) { return p.br.Read(b) }
