package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// CostInterval is an interval-based cost estimate in milliseconds with a
// confidence value (Figure 6 of the paper).
type CostInterval struct {
	LowMs, HighMs float64
	Confidence    float64
}

// Add sums two cost intervals.
func (c CostInterval) Add(o CostInterval) CostInterval {
	conf := c.Confidence
	if o.Confidence < conf {
		conf = o.Confidence
	}
	if c.Confidence == 0 {
		conf = o.Confidence
	}
	return CostInterval{LowMs: c.LowMs + o.LowMs, HighMs: c.HighMs + o.HighMs, Confidence: conf}
}

// Scale multiplies the interval by a factor (e.g. loop iteration count).
func (c CostInterval) Scale(f float64) CostInterval {
	return CostInterval{LowMs: c.LowMs * f, HighMs: c.HighMs * f, Confidence: c.Confidence}
}

// Geomean returns the geometric mean of the bounds: the scalar used to
// compare plans ("the geometric mean of the lower and upper bounds").
func (c CostInterval) Geomean() float64 {
	lo, hi := c.LowMs, c.HighMs
	if lo < 0.001 {
		lo = 0.001
	}
	if hi < lo {
		hi = lo
	}
	return sqrt(lo * hi)
}

func sqrt(x float64) float64 {
	// Newton iterations; avoids importing math in this file for one call.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func (c CostInterval) String() string {
	return fmt.Sprintf("[%.1f..%.1f]ms@%.0f%%", c.LowMs, c.HighMs, c.Confidence*100)
}

// Assignment records the optimizer's decision for one logical operator: the
// chosen alternative plus the estimated cardinality of its output.
type Assignment struct {
	Alt     Alternative
	OutCard CardEstimate
	CostEst CostInterval
	// CoveredBy points at the chain head when this operator is implemented
	// by a fused alternative attached to an earlier operator.
	CoveredBy *Operator
}

// MovementPlan records how the output of a producer operator reaches its
// consumers on other platforms: a conversion tree rooted at the producer's
// output channel.
type MovementPlan struct {
	Producer *Operator
	Tree     *ConversionTree
	CostEst  CostInterval
}

// ExecPlan is an execution plan: the input RheemPlan plus, per operator,
// the chosen execution alternative, and per cross-platform edge, the chosen
// data movement strategy.
type ExecPlan struct {
	Plan        *Plan
	Assignments map[*Operator]*Assignment
	Movements   map[*Operator]*MovementPlan
	Cost        CostInterval

	// LoopBodies holds the (pre-)optimized execution plans of loop bodies,
	// keyed by the loop operator.
	LoopBodies map[*Operator]*ExecPlan

	// CacheOuts marks operators whose materialized output the executor
	// should publish to the cross-job result cache after the producing stage
	// completes. Populated by the optimizer's cache-marking pass.
	CacheOuts map[*Operator]*CacheOut
}

// CacheOut describes one cache-worthy operator output: the subtree
// fingerprint to store it under, the estimated compute cost the cache entry
// saves on a future hit, and the source datasets whose invalidation must
// drop it.
type CacheOut struct {
	Fingerprint string
	CostMs      float64
	Sources     []SourceRef
}

// PlatformOf returns the platform an operator was assigned to, resolving
// fused coverage.
func (ep *ExecPlan) PlatformOf(op *Operator) string {
	a := ep.Assignments[op]
	if a == nil {
		return ""
	}
	if a.CoveredBy != nil {
		return ep.PlatformOf(a.CoveredBy)
	}
	return a.Alt.Platform
}

// Platforms returns the distinct platforms used by the plan, sorted.
func (ep *ExecPlan) Platforms() []string {
	set := map[string]bool{}
	for op := range ep.Assignments {
		if p := ep.PlatformOf(op); p != "" {
			set[p] = true
		}
	}
	for _, body := range ep.LoopBodies {
		for _, p := range body.Platforms() {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String renders the execution plan for --explain output.
func (ep *ExecPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ExecutionPlan for %q (cost %s)\n", ep.Plan.Name, ep.Cost)
	ops, _ := ep.Plan.TopoOrder()
	for _, op := range ops {
		a := ep.Assignments[op]
		if a == nil {
			continue
		}
		switch {
		case a.CoveredBy != nil:
			fmt.Fprintf(&b, "  %-34s -> fused into %s\n", op.String(), a.CoveredBy)
		default:
			fmt.Fprintf(&b, "  %-34s -> %-28s card=%s cost=%s\n", op.String(), a.Alt.String(), a.OutCard, a.CostEst)
		}
		if mv := ep.Movements[op]; mv != nil && len(mv.Tree.Edges) > 0 {
			fmt.Fprintf(&b, "  %-34s    movement:", "")
			for _, e := range mv.Tree.Edges {
				fmt.Fprintf(&b, " %s", e.Name)
			}
			fmt.Fprintf(&b, " (cost=%s)\n", mv.CostEst)
		}
		if body := ep.LoopBodies[op]; body != nil {
			inner := body.String()
			for _, line := range strings.Split(strings.TrimRight(inner, "\n"), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}

// Stage is a maximal subplan whose operators all run on the same platform
// and that hands control back to the executor at its end, materializing its
// terminal outputs (Section 4.2).
type Stage struct {
	ID       int
	Platform string
	Ops      []*Operator // in topological order
	ExecPlan *ExecPlan   // the surrounding execution plan (for assignments)

	// Boundary inputs: operator input ports fed from outside the stage.
	// Keyed by consumer operator; values are per-port producer operators.
	ExternalIn map[*Operator][]*Operator
	// Broadcast inputs from outside the stage.
	ExternalBroadcast map[*Operator][]*Operator
	// Terminal operators whose outputs must be materialized into channels.
	TerminalOuts []*Operator

	// Sniffers, when set, receive every quantum passing the tagged
	// operator's output (exploratory mode).
	Sniffers map[*Operator]func(q any)
}

// Contains reports whether the stage includes op.
func (s *Stage) Contains(op *Operator) bool {
	for _, o := range s.Ops {
		if o == op {
			return true
		}
	}
	return false
}

func (s *Stage) String() string {
	names := make([]string, len(s.Ops))
	for i, o := range s.Ops {
		names[i] = o.String()
	}
	return fmt.Sprintf("Stage%d@%s{%s}", s.ID, s.Platform, strings.Join(names, ", "))
}

// OpStats are the monitor's per-operator observations within a stage run.
type OpStats struct {
	OutCard int64
	Runtime time.Duration // attributed share of the stage runtime
}

// VectorChainStats describes the columnar execution of one fused chain: how
// many of its leading steps compiled to column-wise loops, and how many
// partition batches / rows ran vectorized vs. fell back to the row kernel
// (unbatchable input, type or null mismatches, sniffed steps).
type VectorChainStats struct {
	Ops        []*Operator // the chain, head first (absorbed aggregation last)
	VecSteps   int         // leading steps compiled to column loops
	Batches    int64       // partitions executed column-wise
	Rows       int64       // rows that took the vectorized path
	Fallbacks  int64       // partitions that fell back to the row kernel
	AggBatches int64       // batches absorbed by the grouped-aggregation kernel
	AggRows    int64       // surviving rows the aggregation kernel absorbed
}

// StageStats are the monitor's observations of one stage execution.
type StageStats struct {
	Stage    *Stage
	Runtime  time.Duration
	OutCards map[*Operator]int64 // true output cardinalities
	Ops      map[*Operator]OpStats
	// FusedChains lists the narrow-operator chains the engine executed as
	// single-pass fused kernels (each entry is the chain's ops, head first).
	FusedChains [][]*Operator

	// Vectorized records, per fused chain whose leading steps compiled to
	// column-wise loops, what the vectorized path actually did at run time
	// (the same chain appears in FusedChains too).
	Vectorized []VectorChainStats

	// Resource accounting for per-job profiles. CPUTime, AllocBytes, and
	// BytesMoved are the stage's share of its wave's process-level deltas,
	// attributed proportionally to stage wall time (exact when the wave ran
	// a single stage); InQuanta counts the quanta read from the stage's
	// input channels.
	CPUTime    time.Duration
	AllocBytes int64
	BytesMoved int64
	InQuanta   int64

	// Remote, when non-empty, is the advertise address of the fleet peer
	// that executed this stage (distributed execution). The resource fields
	// above then hold the peer's own measurements and the executor excludes
	// this stage from local wave attribution.
	Remote string
}

// Inputs is the set of channels a stage execution reads: main dataflow
// inputs keyed by (consumer, port) and broadcast inputs keyed by
// (consumer, producer).
type Inputs struct {
	Main      map[*Operator][]*Channel // per consumer, per port
	Broadcast map[*Operator]map[*Operator]*Channel
	// LoopVar optionally carries the loop-carried collection for the body's
	// LoopInput placeholder.
	LoopVar []any
	// Round is the surrounding loop's current iteration (0 outside loops);
	// per-iteration operators such as Sample vary their behaviour with it.
	Round int
}

// NewInputs creates an empty input set.
func NewInputs() *Inputs {
	return &Inputs{
		Main:      map[*Operator][]*Channel{},
		Broadcast: map[*Operator]map[*Operator]*Channel{},
	}
}

// SetMain records the channel feeding a consumer's input port.
func (in *Inputs) SetMain(consumer *Operator, port int, ch *Channel) {
	slots := in.Main[consumer]
	for len(slots) <= port {
		slots = append(slots, nil)
	}
	slots[port] = ch
	in.Main[consumer] = slots
}

// SetBroadcast records a broadcast channel from producer into consumer.
func (in *Inputs) SetBroadcast(consumer, producer *Operator, ch *Channel) {
	m := in.Broadcast[consumer]
	if m == nil {
		m = map[*Operator]*Channel{}
		in.Broadcast[consumer] = m
	}
	m[producer] = ch
}

// Driver is the interface platform packages implement: the executor hands a
// stage plus its input channels to the owning platform's driver, which runs
// it natively and returns the materialized terminal outputs along with
// monitoring statistics.
type Driver interface {
	// Name returns the platform name, e.g. "spark".
	Name() string
	// Execute runs the stage and returns one output channel per terminal
	// operator.
	Execute(stage *Stage, in *Inputs) (map[*Operator]*Channel, *StageStats, error)
	// ChannelDescriptors lists the channel types this platform owns.
	ChannelDescriptors() []ChannelDescriptor
	// Conversions lists the conversion operators this platform contributes
	// (e.g. collection -> rdd, rdd -> collection).
	Conversions() []*Conversion
	// RegisterMappings contributes the platform's operator mappings.
	RegisterMappings(r *MappingRegistry)
}

// StartupCoster is optionally implemented by drivers whose platform incurs
// a fixed per-job startup cost the optimizer must account for.
type StartupCoster interface {
	StartupCostMs() float64
}
