package core

import (
	"fmt"
)

// Kind identifies a logical (platform-agnostic) RHEEM operator type.
type Kind string

// The built-in operator kinds. Applications can register further kinds via
// RegisterKind.
const (
	// Sources.
	KindTextFileSource   Kind = "TextFileSource"   // reads lines from a file (local or DFS)
	KindCollectionSource Kind = "CollectionSource" // emits an in-memory collection
	KindTableSource      Kind = "TableSource"      // scans a relational-store table

	// Unary transformations.
	KindMap       Kind = "Map"
	KindFlatMap   Kind = "FlatMap"
	KindFilter    Kind = "Filter"
	KindMapPart   Kind = "MapPartitions"
	KindSample    Kind = "Sample"
	KindDistinct  Kind = "Distinct"
	KindSort      Kind = "Sort"
	KindCount     Kind = "Count"
	KindReduce    Kind = "Reduce"   // global aggregation to a single quantum
	KindReduceBy  Kind = "ReduceBy" // per-key aggregation
	KindGroupBy   Kind = "GroupBy"  // per-key materialized groups
	KindZipWithID Kind = "ZipWithID"
	KindCache     Kind = "Cache"
	KindProject   Kind = "Project" // record-level projection (push-downable)

	// Binary operators.
	KindJoin      Kind = "Join"      // equi-join on extracted keys
	KindIEJoin    Kind = "IEJoin"    // inequality join (two inequality conditions)
	KindCartesian Kind = "Cartesian" // cross product
	KindUnion     Kind = "Union"
	KindIntersect Kind = "Intersect"
	KindCoGroup   Kind = "CoGroup"

	// Loops.
	KindRepeat  Kind = "Repeat"  // fixed iteration count, nested body plan
	KindDoWhile Kind = "DoWhile" // loop until a convergence UDF is satisfied

	// Graph composite.
	KindPageRank Kind = "PageRank" // edges -> (vertex, rank) pairs

	// Sinks.
	KindCollectionSink Kind = "CollectionSink" // materializes results for the driver
	KindTextFileSink   Kind = "TextFileSink"   // writes formatted quanta to a file
)

// Inequality is a comparison operator used by IEJoin conditions.
type Inequality int

// Inequality comparison kinds.
const (
	Less Inequality = iota
	LessEq
	Greater
	GreaterEq
)

func (iq Inequality) String() string {
	switch iq {
	case Less:
		return "<"
	case LessEq:
		return "<="
	case Greater:
		return ">"
	case GreaterEq:
		return ">="
	}
	return "?"
}

// Holds reports whether "a iq b" holds.
func (iq Inequality) Holds(a, b float64) bool {
	switch iq {
	case Less:
		return a < b
	case LessEq:
		return a <= b
	case Greater:
		return a > b
	case GreaterEq:
		return a >= b
	}
	return false
}

// BroadcastCtx gives UDFs access to broadcast side inputs, keyed by the
// producing operator's label (the execution-context of the paper's extended
// functions).
type BroadcastCtx map[string][]any

// Get returns the broadcast collection published under label.
func (b BroadcastCtx) Get(label string) []any { return b[label] }

// UDFs bundles the user-defined functions an operator may carry. Which
// fields are consulted depends on the operator kind.
type UDFs struct {
	Map     func(any) any   // Map
	FlatMap func(any) []any // FlatMap
	Pred    func(any) bool  // Filter

	// MapExpr, when set, is the declarative form of Map (builders keep the
	// two consistent: Map = MapExpr.Fn()). Row-at-a-time paths only ever
	// call Map; the vectorized kernel compiler recognizes MapExpr and runs
	// it as a per-column tight loop.
	MapExpr *MapExpr

	// ReduceExpr, when set, is the declarative form of a grouped
	// aggregation (builders keep Key = ReduceExpr.KeyFn()). Engines
	// recognize it and run the two-phase partial/merge aggregation —
	// vectorized over ColumnBatches when the columnar plane is on, through
	// the row-at-a-time AggState fold otherwise. Reduce stays nil: pairwise
	// folding cannot express avg, so declarative reduce-bys never take the
	// opaque UDF path.
	ReduceExpr *ReduceExpr
	MapPart    func([]any) []any   // MapPartitions
	Key        func(any) any       // ReduceBy, GroupBy, Join (left), CoGroup (left)
	KeyRight   func(any) any       // Join (right), CoGroup (right)
	Reduce     func(a, b any) any  // Reduce, ReduceBy
	Combine    func(l, r any) any  // Join result composer; default -> Record{l, r}
	Less       func(a, b any) bool // Sort; default CompareAny
	Format     func(any) string    // TextFileSink; default fmt.Sprint

	// IEJoin condition attribute extractors: for a left quantum, LeftNums
	// returns the values compared under IEOp1 and IEOp2; likewise RightNums.
	LeftNums  func(any) (float64, float64)
	RightNums func(any) (float64, float64)

	Cond func(rounds int, current []any) bool // DoWhile continuation test

	// Open, when set, is invoked by the executing platform before the first
	// quantum is processed, handing the UDF its broadcast side inputs.
	Open func(bc BroadcastCtx)
}

// Params carries kind-specific scalar parameters.
type Params struct {
	Path           string  // TextFileSource/Sink: file path ("dfs://..." or local)
	Table          string  // TableSource: table name
	Store          string  // TableSource: relational store instance name
	Columns        []int   // Project / TableSource projected columns (nil = all)
	Collection     []any   // CollectionSource payload
	SampleSize     int     // Sample: absolute sample size
	SampleFraction float64 // Sample: fractional size (used when SampleSize==0)
	SampleMethod   string  // Sample: "bernoulli", "reservoir", "shuffle-first" (default bernoulli)
	Iterations     int     // Repeat: fixed iteration count; PageRank: #iterations
	MaxIterations  int     // DoWhile: safety bound
	DampingFactor  float64 // PageRank: damping (default 0.85)
	Seed           int64   // Sample: RNG seed (0 = nondeterministic-free default 1)

	// IEJoin conditions: left.attr1 <op1> right.attr1 AND left.attr2 <op2> right.attr2.
	IEOp1, IEOp2 Inequality

	// Where is an optional declarative filter predicate (instead of an
	// opaque UDF); relational platforms push it into scans and indexes.
	Where *Predicate
}

// Operator is a vertex of a RheemPlan: a platform-agnostic data
// transformation over its input quanta.
type Operator struct {
	ID    int
	Kind  Kind
	Label string // human-readable role, e.g. "parse" in Map(parse)

	UDF    UDFs
	Params Params

	// Selectivity is an optional user hint: expected output/input cardinality
	// ratio. Zero means unknown (kind defaults apply).
	Selectivity float64

	// TargetPlatform pins this operator to a platform (withTargetPlatform in
	// the paper). Empty means the optimizer is free to choose.
	TargetPlatform string

	// OuterRef marks a loop-body source operator (a CollectionSource with
	// nil Params.Collection) that reads the output of an operator of the
	// surrounding plan — e.g. SGD's Sample consuming the cached points from
	// outside the loop (Figure 3 of the paper). The executor materializes
	// the referenced output before entering the loop and feeds it to this
	// placeholder every iteration.
	OuterRef *Operator

	// Body is the nested subplan of loop operators (Repeat/DoWhile). The
	// subplan reads its loop-carried input through a LoopInput collection
	// source (identified by Plan.LoopInput) and produces the next loop value
	// at Plan.LoopOutput.
	Body *Plan

	// Broadcasts lists operators (in the same plan) whose full output is
	// broadcast to this operator as side input, by plan edge. Managed by
	// Plan.Broadcast.
	broadcasts []*Operator

	inputs  []*Operator // filled by Plan.Connect
	outputs []*Operator
}

// InArity returns how many dataflow inputs the operator kind consumes.
func (k Kind) InArity() int {
	switch k {
	case KindTextFileSource, KindCollectionSource, KindTableSource:
		return 0
	case KindJoin, KindIEJoin, KindCartesian, KindUnion, KindIntersect, KindCoGroup:
		return 2
	default:
		return 1
	}
}

// OutArity returns how many dataflow outputs the operator kind produces.
func (k Kind) OutArity() int {
	switch k {
	case KindCollectionSink, KindTextFileSink:
		return 0
	default:
		return 1
	}
}

// IsSource reports whether the kind has no dataflow inputs.
func (k Kind) IsSource() bool { return k.InArity() == 0 }

// IsSink reports whether the kind has no dataflow outputs.
func (k Kind) IsSink() bool { return k.OutArity() == 0 }

// IsLoop reports whether the kind nests a loop body.
func (k Kind) IsLoop() bool { return k == KindRepeat || k == KindDoWhile }

// Inputs returns the operators feeding this operator, in port order.
func (o *Operator) Inputs() []*Operator { return o.inputs }

// Outputs returns the operators consuming this operator's output.
func (o *Operator) Outputs() []*Operator { return o.outputs }

// Broadcasts returns the operators broadcast into this operator.
func (o *Operator) Broadcasts() []*Operator { return o.broadcasts }

func (o *Operator) String() string {
	if o.Label != "" {
		return fmt.Sprintf("%s(%s)#%d", o.Kind, o.Label, o.ID)
	}
	return fmt.Sprintf("%s#%d", o.Kind, o.ID)
}

// DefaultSelectivity returns the selectivity assumed for an operator when
// the application provides no hint, per kind. RHEEM "comes with default
// selectivity values in case they are not provided".
func (o *Operator) DefaultSelectivity() float64 {
	if o.Selectivity > 0 {
		return o.Selectivity
	}
	switch o.Kind {
	case KindFilter:
		return 0.5
	case KindFlatMap:
		return 3.0
	case KindDistinct:
		return 0.7
	case KindReduceBy, KindGroupBy, KindCoGroup:
		return 0.1
	default:
		return 1.0
	}
}

// EstimateOutCard derives an output cardinality interval from the input
// cardinality intervals, per kind. It is the per-operator "cardinality
// estimator function" of the paper.
func (o *Operator) EstimateOutCard(in []CardEstimate) CardEstimate {
	sel := o.DefaultSelectivity()
	switch o.Kind {
	case KindCollectionSource:
		n := int64(len(o.Params.Collection))
		return ExactCard(n)
	case KindTextFileSource, KindTableSource:
		// Resolved by source sampling / table statistics in the optimizer;
		// here only a wide prior (bounded for readable cost displays).
		return CardEstimate{Low: 0, High: 1e9, Confidence: 0.05}
	case KindMap, KindMapPart, KindSort, KindCache, KindZipWithID, KindProject:
		return in[0]
	case KindFilter, KindFlatMap:
		return in[0].Scale(sel)
	case KindDistinct, KindGroupBy, KindReduceBy:
		return in[0].Scale(sel)
	case KindCount, KindReduce:
		return ExactCard(1)
	case KindSample:
		if o.Params.SampleSize > 0 {
			return ExactCard(int64(o.Params.SampleSize))
		}
		return in[0].Scale(o.Params.SampleFraction)
	case KindUnion:
		return in[0].Add(in[1])
	case KindIntersect:
		lo := in[0]
		if in[1].High < lo.High {
			lo = in[1]
		}
		return lo.Scale(0.5)
	case KindJoin:
		// Classic |L|*|R|/max(distinct) heuristic collapsed into a sel factor.
		prod := in[0].Mul(in[1])
		if o.Selectivity > 0 {
			return prod.Scale(o.Selectivity)
		}
		return prod.Scale(1e-3).Widen(0.3)
	case KindCartesian:
		return in[0].Mul(in[1])
	case KindIEJoin:
		prod := in[0].Mul(in[1])
		if o.Selectivity > 0 {
			return prod.Scale(o.Selectivity)
		}
		return prod.Scale(0.25).Widen(0.2)
	case KindCoGroup:
		return in[0].Add(in[1]).Scale(sel)
	case KindRepeat, KindDoWhile:
		// The loop's output cardinality is its body output's; approximated by
		// the loop input when the body is not yet analyzed.
		return in[0].Widen(0.5)
	case KindPageRank:
		// One (vertex, rank) pair per distinct vertex; edges/10 heuristic.
		return in[0].Scale(0.1).Widen(0.5)
	case KindCollectionSink, KindTextFileSink:
		return in[0]
	}
	return in[0]
}

// kindRegistry supports application-defined operator kinds (extensibility,
// Section 3 of the paper).
type kindInfo struct {
	InArity, OutArity int
	Estimator         func(o *Operator, in []CardEstimate) CardEstimate
}

var kindRegistry = map[Kind]kindInfo{}

// RegisterKind registers a custom operator kind with its arities and an
// optional cardinality estimator.
func RegisterKind(k Kind, inArity, outArity int, est func(o *Operator, in []CardEstimate) CardEstimate) {
	kindRegistry[k] = kindInfo{InArity: inArity, OutArity: outArity, Estimator: est}
}

// InArityOf returns the input arity of an operator, consulting the
// custom-kind registry for application-defined kinds.
func InArityOf(op *Operator) int {
	if ki, ok := registeredKind(op.Kind); ok {
		return ki.InArity
	}
	return op.Kind.InArity()
}

// OutArityOf returns the output arity of an operator, consulting the
// custom-kind registry.
func OutArityOf(op *Operator) int {
	if ki, ok := registeredKind(op.Kind); ok {
		return ki.OutArity
	}
	return op.Kind.OutArity()
}

// EstimateCardOf estimates an operator's output cardinality, dispatching to
// a registered custom estimator when one exists.
func EstimateCardOf(op *Operator, in []CardEstimate) CardEstimate {
	if ki, ok := registeredKind(op.Kind); ok && ki.Estimator != nil {
		return ki.Estimator(op, in)
	}
	return op.EstimateOutCard(in)
}

// registeredKind returns extensibility info for k, if any.
func registeredKind(k Kind) (kindInfo, bool) {
	ki, ok := kindRegistry[k]
	return ki, ok
}
