package core

import (
	"os"
	"sync/atomic"
)

// Columnar data plane. A ColumnBatch holds a batch of data quanta
// column-major: one typed buffer per record field (or one buffer total for
// bare-scalar quanta), with validity bitmaps for typed columns that contain
// nils and an []any escape column for mixed or foreign element types. The
// vectorized fused kernels (internal/platform/driverutil) run declarative
// predicates, numeric maps, and projections as per-column tight loops over
// these buffers with a selection vector, and the binary codec ships batches
// as single column-wise frames (see bincodec.go) so shuffles and DFS files
// move contiguous columns instead of one boxed row at a time.

var columnarOff atomic.Bool

func init() {
	if os.Getenv("RHEEM_NO_COLUMNAR") == "1" {
		columnarOff.Store(true)
	}
}

// ColumnarDisabled reports whether the columnar data plane is globally
// disabled. It is toggled by the RHEEM_NO_COLUMNAR=1 environment variable or
// SetColumnarDisabled, mirroring the fusion kill switch: kernels fall back
// to the row path and the codec writes one frame per quantum.
func ColumnarDisabled() bool { return columnarOff.Load() }

// SetColumnarDisabled toggles the columnar data plane at runtime and returns
// the previous setting. Tests use it to cross-check columnar execution
// against the row path.
func SetColumnarDisabled(off bool) bool { return columnarOff.Swap(off) }

// ColType identifies the physical representation of one column.
type ColType uint8

// Column physical types.
const (
	ColInt64   ColType = iota // int64 buffer
	ColFloat64                // float64 buffer
	ColString                 // string buffer
	ColBool                   // bool buffer
	ColAny                    // escape: mixed or foreign values, kept boxed
)

func (t ColType) String() string {
	switch t {
	case ColInt64:
		return "int64"
	case ColFloat64:
		return "float64"
	case ColString:
		return "string"
	case ColBool:
		return "bool"
	}
	return "any"
}

// Column is one typed buffer of a ColumnBatch. Exactly one of the value
// slices is populated, selected by Type. Valid, when non-nil, flags the rows
// whose value is present (a cleared bit reads back as nil); ColAny columns
// keep nils inline and never carry a bitmap.
type Column struct {
	Type   ColType
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Anys   []any
	Valid  *Bitset
}

// ColumnBatch is a column-major batch of data quanta: either Record quanta
// of one common width (one column per field) or bare scalar quanta (a single
// column, Scalar() true).
type ColumnBatch struct {
	Cols   []*Column
	n      int
	scalar bool
	// rows keeps the original boxed quanta when the batch was built from
	// rows (nil after wire decode); emission reuses them for columns the
	// kernel never rewrote, so filter-only chains re-box nothing.
	rows  []any
	dirty []bool
}

// Len returns the number of rows in the batch.
func (b *ColumnBatch) Len() int { return b.n }

// Width returns the number of columns.
func (b *ColumnBatch) Width() int { return len(b.Cols) }

// Scalar reports whether the batch holds bare scalar quanta rather than
// Records.
func (b *ColumnBatch) Scalar() bool { return b.scalar }

// BatchFromRows builds a column-major batch from row-major quanta. ok is
// false when the rows have no columnar representation: empty input, Records
// of differing widths, or quantum kinds the batch does not model (KV, Edge,
// Group, slices, mixes of Records and scalars). Within a column, values that
// are not all of one of the four typed kinds take the ColAny escape, and
// nils alongside typed values become validity-bitmap holes, so the
// row→column→row round trip reproduces the boxed values exactly.
func BatchFromRows(rows []any) (*ColumnBatch, bool) {
	if len(rows) == 0 {
		return nil, false
	}
	if r, ok := rows[0].(Record); ok {
		w := len(r)
		for _, q := range rows[1:] {
			rr, ok := q.(Record)
			if !ok || len(rr) != w {
				return nil, false
			}
		}
		b := &ColumnBatch{n: len(rows), rows: rows, dirty: make([]bool, w), Cols: make([]*Column, w)}
		for c := range b.Cols {
			b.Cols[c] = buildColumn(rows, c)
		}
		return b, true
	}
	for _, q := range rows {
		switch q.(type) {
		case int64, float64, string, bool, nil:
		default:
			return nil, false
		}
	}
	b := &ColumnBatch{n: len(rows), rows: rows, scalar: true, dirty: make([]bool, 1)}
	b.Cols = []*Column{buildColumn(rows, -1)}
	return b, true
}

// colValue extracts column c of one quantum; c < 0 addresses the bare
// scalar quantum itself.
func colValue(q any, c int) any {
	if c < 0 {
		return q
	}
	return q.(Record)[c]
}

func buildColumn(rows []any, c int) *Column {
	// First pass: a column is typed only when every present value has the
	// same dynamic type out of the four column kinds. Anything else — mixed
	// numerics, Go ints, foreign types, all-nil columns — takes the ColAny
	// escape so emission reproduces the boxed values bit-for-bit.
	t := ColAny
	sawVal := false
	nulls := 0
	for _, q := range rows {
		v := colValue(q, c)
		if v == nil {
			nulls++
			continue
		}
		var vt ColType
		switch v.(type) {
		case int64:
			vt = ColInt64
		case float64:
			vt = ColFloat64
		case string:
			vt = ColString
		case bool:
			vt = ColBool
		default:
			return anyColumn(rows, c)
		}
		if !sawVal {
			t, sawVal = vt, true
		} else if vt != t {
			return anyColumn(rows, c)
		}
	}
	if !sawVal {
		return anyColumn(rows, c)
	}
	col := &Column{Type: t}
	if nulls > 0 {
		col.Valid = NewBitset(len(rows))
	}
	switch t {
	case ColInt64:
		col.Ints = make([]int64, len(rows))
		for i, q := range rows {
			if v, ok := colValue(q, c).(int64); ok {
				col.Ints[i] = v
				if col.Valid != nil {
					col.Valid.Set(i)
				}
			}
		}
	case ColFloat64:
		col.Floats = make([]float64, len(rows))
		for i, q := range rows {
			if v, ok := colValue(q, c).(float64); ok {
				col.Floats[i] = v
				if col.Valid != nil {
					col.Valid.Set(i)
				}
			}
		}
	case ColString:
		col.Strs = make([]string, len(rows))
		for i, q := range rows {
			if v, ok := colValue(q, c).(string); ok {
				col.Strs[i] = v
				if col.Valid != nil {
					col.Valid.Set(i)
				}
			}
		}
	case ColBool:
		col.Bools = make([]bool, len(rows))
		for i, q := range rows {
			if v, ok := colValue(q, c).(bool); ok {
				col.Bools[i] = v
				if col.Valid != nil {
					col.Valid.Set(i)
				}
			}
		}
	}
	return col
}

func anyColumn(rows []any, c int) *Column {
	col := &Column{Type: ColAny, Anys: make([]any, len(rows))}
	for i, q := range rows {
		col.Anys[i] = colValue(q, c)
	}
	return col
}

// AppendRows appends every row of the batch to dst in row-major form.
func (b *ColumnBatch) AppendRows(dst []any) []any { return b.EmitRows(dst, nil, nil) }

// EmitRows appends the selected rows (sel nil = all, in order) to dst,
// projected to the proj columns (nil = every column in order). Columns the
// kernel never rewrote re-emit the original boxed values; a clean batch with
// identity projection re-emits the original quanta without allocating.
func (b *ColumnBatch) EmitRows(dst []any, sel []int, proj []int) []any {
	if b.scalar {
		if sel == nil {
			for i := 0; i < b.n; i++ {
				dst = append(dst, b.value(0, i))
			}
			return dst
		}
		for _, i := range sel {
			dst = append(dst, b.value(0, i))
		}
		return dst
	}
	if proj == nil && b.rows != nil && !b.anyDirty() {
		if sel == nil {
			return append(dst, b.rows...)
		}
		for _, i := range sel {
			dst = append(dst, b.rows[i])
		}
		return dst
	}
	cols := proj
	if cols == nil {
		cols = make([]int, len(b.Cols))
		for c := range cols {
			cols[c] = c
		}
	}
	if sel == nil {
		for i := 0; i < b.n; i++ {
			dst = append(dst, b.emitRecord(i, cols))
		}
		return dst
	}
	for _, i := range sel {
		dst = append(dst, b.emitRecord(i, cols))
	}
	return dst
}

func (b *ColumnBatch) emitRecord(i int, cols []int) Record {
	rec := make(Record, len(cols))
	for j, c := range cols {
		rec[j] = b.value(c, i)
	}
	return rec
}

func (b *ColumnBatch) anyDirty() bool {
	for _, d := range b.dirty {
		if d {
			return true
		}
	}
	return false
}

// value returns the boxed value of column c at row i, reusing the original
// boxed value when the column was never rewritten.
func (b *ColumnBatch) value(c, i int) any {
	if b.rows != nil && !b.dirty[c] {
		if b.scalar {
			return b.rows[i]
		}
		return b.rows[i].(Record)[c]
	}
	return b.boxed(c, i)
}

// boxed boxes column c's row-i value from the typed buffers.
func (b *ColumnBatch) boxed(c, i int) any {
	col := b.Cols[c]
	if col.Valid != nil && !col.Valid.Test(i) {
		return nil
	}
	switch col.Type {
	case ColInt64:
		return col.Ints[i]
	case ColFloat64:
		return col.Floats[i]
	case ColString:
		return col.Strs[i]
	case ColBool:
		return col.Bools[i]
	default:
		return col.Anys[i]
	}
}

// --- vectorized column operators -----------------------------------------

// predMask decomposes a comparison operator into which of the three
// orderings (<, ==, >) satisfy it, so filter loops test without branching on
// the operator per row. An unknown operator keeps nothing, like Eval.
func predMask(op PredOp) (lt, eq, gt bool) {
	switch op {
	case PredEq:
		return false, true, false
	case PredLt:
		return true, false, false
	case PredLe:
		return true, true, false
	case PredGt:
		return false, false, true
	case PredGe:
		return false, true, true
	}
	return false, false, false
}

// VecFilterOK reports whether FilterSel evaluates p against column c with
// semantics identical to the row path: string predicates need a fully-valid
// string column, anything else a fully-valid numeric column. Callers fall
// back to the row kernel otherwise (which also reproduces the row path's
// panics for genuinely ill-typed data).
func (b *ColumnBatch) VecFilterOK(c int, p *Predicate) bool {
	if c < 0 || c >= len(b.Cols) {
		return false
	}
	col := b.Cols[c]
	if col.Valid != nil {
		return false
	}
	if _, ok := p.Value.(string); ok {
		return col.Type == ColString
	}
	return col.Type == ColInt64 || col.Type == ColFloat64
}

// FilterSel evaluates p against column c for the rows in sel (nil = all) and
// appends the surviving row indices to out. Numeric comparisons run in the
// float64 domain exactly like Record.Float-based evaluation. Callers must
// have checked VecFilterOK.
func (b *ColumnBatch) FilterSel(c int, p *Predicate, sel, out []int) []int {
	col := b.Cols[c]
	lt, eq, gt := predMask(p.Op)
	if v, ok := p.Value.(string); ok {
		xs := col.Strs
		if sel == nil {
			for i := 0; i < b.n; i++ {
				if s := xs[i]; (lt && s < v) || (eq && s == v) || (gt && s > v) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if s := xs[i]; (lt && s < v) || (eq && s == v) || (gt && s > v) {
				out = append(out, i)
			}
		}
		return out
	}
	w := numOf(p.Value)
	if col.Type == ColInt64 {
		xs := col.Ints
		if sel == nil {
			for i := 0; i < b.n; i++ {
				if x := float64(xs[i]); (lt && x < w) || (eq && x == w) || (gt && x > w) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if x := float64(xs[i]); (lt && x < w) || (eq && x == w) || (gt && x > w) {
				out = append(out, i)
			}
		}
		return out
	}
	xs := col.Floats
	if sel == nil {
		for i := 0; i < b.n; i++ {
			if x := xs[i]; (lt && x < w) || (eq && x == w) || (gt && x > w) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if x := xs[i]; (lt && x < w) || (eq && x == w) || (gt && x > w) {
			out = append(out, i)
		}
	}
	return out
}

// VecMapOK reports whether ApplyNumExpr can run e against column c with
// row-path-identical semantics: a fully-valid numeric column and a numeric
// operand.
func (b *ColumnBatch) VecMapOK(c int, e *MapExpr) bool {
	if c < 0 || c >= len(b.Cols) {
		return false
	}
	col := b.Cols[c]
	if col.Valid != nil {
		return false
	}
	if col.Type != ColInt64 && col.Type != ColFloat64 {
		return false
	}
	_, ok := toFloat(e.Operand)
	return ok
}

// ApplyNumExpr rewrites column c in place for the rows in sel (nil = all)
// and marks the column dirty. Arithmetic follows MapExpr.Apply: int64
// columns stay integral under an integral operand and migrate to float64
// otherwise. Rows outside sel are dead (already filtered out) and may be
// rewritten freely. Callers must have checked VecMapOK.
func (b *ColumnBatch) ApplyNumExpr(c int, e *MapExpr, sel []int) {
	col := b.Cols[c]
	b.dirty[c] = true
	if col.Type == ColInt64 {
		if w, ok := intOperand(e.Operand); ok {
			xs := col.Ints
			switch e.Op {
			case NumAdd:
				if sel == nil {
					for i := range xs {
						xs[i] += w
					}
				} else {
					for _, i := range sel {
						xs[i] += w
					}
				}
			case NumSub:
				if sel == nil {
					for i := range xs {
						xs[i] -= w
					}
				} else {
					for _, i := range sel {
						xs[i] -= w
					}
				}
			case NumMul:
				if sel == nil {
					for i := range xs {
						xs[i] *= w
					}
				} else {
					for _, i := range sel {
						xs[i] *= w
					}
				}
			default:
				panic("core: map expr " + e.String() + ": unknown op")
			}
			return
		}
		// Integral column, fractional operand: the result domain is float64,
		// so migrate the whole column (dead rows included; they are never
		// emitted).
		fs := make([]float64, len(col.Ints))
		for i, v := range col.Ints {
			fs[i] = float64(v)
		}
		col.Ints, col.Floats, col.Type = nil, fs, ColFloat64
	}
	w, _ := toFloat(e.Operand)
	xs := col.Floats
	switch e.Op {
	case NumAdd:
		if sel == nil {
			for i := range xs {
				xs[i] += w
			}
		} else {
			for _, i := range sel {
				xs[i] += w
			}
		}
	case NumSub:
		if sel == nil {
			for i := range xs {
				xs[i] -= w
			}
		} else {
			for _, i := range sel {
				xs[i] -= w
			}
		}
	case NumMul:
		if sel == nil {
			for i := range xs {
				xs[i] *= w
			}
		} else {
			for _, i := range sel {
				xs[i] *= w
			}
		}
	default:
		panic("core: map expr " + e.String() + ": unknown op")
	}
}
