package core

import (
	"os"
	"sync"
	"sync/atomic"
)

// Columnar data plane. A ColumnBatch holds a batch of data quanta
// column-major: one typed buffer per record field (or one buffer total for
// bare-scalar quanta), with validity bitmaps for typed columns that contain
// nils and an []any escape column for mixed or foreign element types. The
// vectorized fused kernels (internal/platform/driverutil) run declarative
// predicates, numeric maps, and projections as per-column tight loops over
// these buffers with a selection vector, and the binary codec ships batches
// as single column-wise frames (see bincodec.go) so shuffles and DFS files
// move contiguous columns instead of one boxed row at a time.

var columnarOff atomic.Bool

func init() {
	if os.Getenv("RHEEM_NO_COLUMNAR") == "1" {
		columnarOff.Store(true)
	}
}

// ColumnarDisabled reports whether the columnar data plane is globally
// disabled. It is toggled by the RHEEM_NO_COLUMNAR=1 environment variable or
// SetColumnarDisabled, mirroring the fusion kill switch: kernels fall back
// to the row path and the codec writes one frame per quantum.
func ColumnarDisabled() bool { return columnarOff.Load() }

// SetColumnarDisabled toggles the columnar data plane at runtime and returns
// the previous setting. Tests use it to cross-check columnar execution
// against the row path.
func SetColumnarDisabled(off bool) bool { return columnarOff.Swap(off) }

// ColType identifies the physical representation of one column.
type ColType uint8

// Column physical types.
const (
	ColInt64   ColType = iota // int64 buffer
	ColFloat64                // float64 buffer
	ColString                 // string buffer
	ColBool                   // bool buffer
	ColAny                    // escape: mixed or foreign values, kept boxed
)

func (t ColType) String() string {
	switch t {
	case ColInt64:
		return "int64"
	case ColFloat64:
		return "float64"
	case ColString:
		return "string"
	case ColBool:
		return "bool"
	}
	return "any"
}

// Column is one typed buffer of a ColumnBatch. Exactly one of the value
// slices is populated, selected by Type. Valid, when non-nil, flags the rows
// whose value is present (a cleared bit reads back as nil); ColAny columns
// keep nils inline and never carry a bitmap.
//
// A ColString column is either plain (Strs populated) or dictionary-encoded
// (Dict holds the distinct values in first-occurrence order, Codes one index
// per row, Strs nil). Dictionary columns evaluate string predicates once per
// distinct value instead of once per row, group by integer code, and ship
// over the wire as a single dictionary frame.
type Column struct {
	Type   ColType
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Anys   []any
	Valid  *Bitset

	Dict  []string
	Codes []uint32
}

// DictEncoded reports whether the column is a dictionary-encoded string
// column.
func (c *Column) DictEncoded() bool { return c.Type == ColString && c.Dict != nil }

// Str returns row i's string value of a plain or dictionary-encoded string
// column.
func (c *Column) Str(i int) string {
	if c.Dict != nil {
		return c.Dict[c.Codes[i]]
	}
	return c.Strs[i]
}

// ColumnBatch is a column-major batch of data quanta: either Record quanta
// of one common width (one column per field) or bare scalar quanta (a single
// column, Scalar() true).
type ColumnBatch struct {
	Cols   []*Column
	n      int
	scalar bool
	// rows keeps the original boxed quanta when the batch was built from
	// rows (nil after wire decode); emission reuses them for columns the
	// kernel never rewrote, so filter-only chains re-box nothing.
	rows  []any
	dirty []bool
}

// Len returns the number of rows in the batch.
func (b *ColumnBatch) Len() int { return b.n }

// Width returns the number of columns.
func (b *ColumnBatch) Width() int { return len(b.Cols) }

// Scalar reports whether the batch holds bare scalar quanta rather than
// Records.
func (b *ColumnBatch) Scalar() bool { return b.scalar }

// BatchFromRows builds a column-major batch from row-major quanta. ok is
// false when the rows have no columnar representation: empty input, Records
// of differing widths, or quantum kinds the batch does not model (KV, Edge,
// Group, slices, mixes of Records and scalars). Within a column, values that
// are not all of one of the four typed kinds take the ColAny escape, and
// nils alongside typed values become validity-bitmap holes, so the
// row→column→row round trip reproduces the boxed values exactly.
func BatchFromRows(rows []any) (*ColumnBatch, bool) { return BatchFromRowsNeeding(rows, nil) }

// BatchFromRowsNeeding is BatchFromRows restricted to the columns a compiled
// vector plan actually reads: with a non-nil need list, only the listed
// column indices get typed buffers (out-of-range entries are ignored; the
// plan's own bounds checks fall back for them) and every other column slot
// stays nil. Unbuilt columns are never dirty, so emission re-boxes nothing —
// a filter chain that drops a wide string column no longer pays to build it.
func BatchFromRowsNeeding(rows []any, need []int) (*ColumnBatch, bool) {
	if len(rows) == 0 {
		return nil, false
	}
	if r, ok := rows[0].(Record); ok {
		w := len(r)
		for _, q := range rows[1:] {
			rr, ok := q.(Record)
			if !ok || len(rr) != w {
				return nil, false
			}
		}
		b := &ColumnBatch{n: len(rows), rows: rows, dirty: make([]bool, w), Cols: make([]*Column, w)}
		if need == nil {
			for c := range b.Cols {
				b.Cols[c] = buildColumn(rows, c)
			}
			return b, true
		}
		for _, c := range need {
			if c >= 0 && c < w && b.Cols[c] == nil {
				b.Cols[c] = buildColumn(rows, c)
			}
		}
		return b, true
	}
	for _, q := range rows {
		switch q.(type) {
		case int64, float64, string, bool, nil:
		default:
			return nil, false
		}
	}
	b := &ColumnBatch{n: len(rows), rows: rows, scalar: true, dirty: make([]bool, 1)}
	b.Cols = []*Column{buildColumn(rows, -1)}
	return b, true
}

// colValue extracts column c of one quantum; c < 0 addresses the bare
// scalar quantum itself.
func colValue(q any, c int) any {
	if c < 0 {
		return q
	}
	return q.(Record)[c]
}

// Column-buffer pools. Kernel-private batches — built by the vectorized
// kernels from one partition's rows and dropped right after emission or
// aggregation absorb — dominate allocation on the hot path, so their typed
// buffers recycle through these pools via (*ColumnBatch).Recycle. A pooled
// buffer is cleared on reuse, restoring the zero-value-in-holes invariant
// that make() used to provide.
var (
	intBufPool   sync.Pool
	floatBufPool sync.Pool
	strBufPool   sync.Pool
	boolBufPool  sync.Pool
	codeBufPool  sync.Pool
	anyBufPool   sync.Pool
)

func getIntBuf(n int) []int64 {
	if p, ok := intBufPool.Get().(*[]int64); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]int64, n)
}

func getFloatBuf(n int) []float64 {
	if p, ok := floatBufPool.Get().(*[]float64); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]float64, n)
}

func getStrBuf(n int) []string {
	if p, ok := strBufPool.Get().(*[]string); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]string, n)
}

func getBoolBuf(n int) []bool {
	if p, ok := boolBufPool.Get().(*[]bool); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]bool, n)
}

func getCodeBuf(n int) []uint32 {
	if p, ok := codeBufPool.Get().(*[]uint32); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]uint32, n)
}

func getAnyBuf(n int) []any {
	if p, ok := anyBufPool.Get().(*[]any); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]any, n)
}

func putIntBuf(s []int64) {
	if cap(s) > 0 {
		s = s[:0]
		intBufPool.Put(&s)
	}
}

func putFloatBuf(s []float64) {
	if cap(s) > 0 {
		s = s[:0]
		floatBufPool.Put(&s)
	}
}

func putStrBuf(s []string) {
	if cap(s) > 0 {
		s = s[:cap(s)]
		clear(s) // release the string data promptly
		strBufPool.Put(&s)
	}
}

func putBoolBuf(s []bool) {
	if cap(s) > 0 {
		s = s[:0]
		boolBufPool.Put(&s)
	}
}

func putCodeBuf(s []uint32) {
	if cap(s) > 0 {
		s = s[:0]
		codeBufPool.Put(&s)
	}
}

func putAnyBuf(s []any) {
	if cap(s) > 0 {
		s = s[:cap(s)]
		clear(s) // release the boxed values promptly
		anyBufPool.Put(&s)
	}
}

// Recycle returns the batch's typed column buffers to the build pools and
// empties the batch. Only the sole owner of a batch built privately from
// rows may call it, and only after the last read of any column: recycled
// buffers are handed out to later BatchFromRows calls. Decoded, cached, or
// otherwise shared batches must never be recycled. Emitted rows stay valid —
// emission boxes values out of the buffers (or reuses the original boxed
// quanta), never aliasing the typed backing arrays.
func (b *ColumnBatch) Recycle() {
	for _, col := range b.Cols {
		if col == nil {
			continue
		}
		putIntBuf(col.Ints)
		putFloatBuf(col.Floats)
		putStrBuf(col.Strs)
		putBoolBuf(col.Bools)
		putCodeBuf(col.Codes)
		putAnyBuf(col.Anys)
		col.Ints, col.Floats, col.Strs, col.Bools, col.Codes, col.Anys = nil, nil, nil, nil, nil, nil
		col.Dict, col.Valid = nil, nil
	}
	b.Cols, b.rows, b.dirty, b.n = nil, nil, nil, 0
}

// ensureValid materializes the validity bitmap on the first nil seen after
// typed filling began, back-filling the bits of the rows already written
// (all present, or the bitmap would already exist).
func ensureValid(col *Column, n, i int) {
	if col.Valid == nil {
		col.Valid = NewBitset(n)
		for j := 0; j < i; j++ {
			col.Valid.Set(j)
		}
	}
}

func buildColumn(rows []any, c int) *Column {
	// Single pass: the column type is chosen from the first present value
	// and the typed buffer fills as the scan goes. A later present value of
	// any other kind abandons the buffer back to its pool and falls to the
	// ColAny escape (mixed numerics, Go ints, foreign types), as does an
	// all-nil column, so emission reproduces the boxed values bit-for-bit.
	n := len(rows)
	first := 0
	for first < n && colValue(rows[first], c) == nil {
		first++
	}
	if first == n {
		return anyColumn(rows, c)
	}
	col := &Column{}
	if first > 0 {
		col.Valid = NewBitset(n)
	}
	switch colValue(rows[first], c).(type) {
	case int64:
		col.Type = ColInt64
		buf := getIntBuf(n)
		for i := first; i < n; i++ {
			v := colValue(rows[i], c)
			if v == nil {
				ensureValid(col, n, i)
				continue
			}
			x, ok := v.(int64)
			if !ok {
				putIntBuf(buf)
				return anyColumn(rows, c)
			}
			buf[i] = x
			if col.Valid != nil {
				col.Valid.Set(i)
			}
		}
		col.Ints = buf
	case float64:
		col.Type = ColFloat64
		buf := getFloatBuf(n)
		for i := first; i < n; i++ {
			v := colValue(rows[i], c)
			if v == nil {
				ensureValid(col, n, i)
				continue
			}
			x, ok := v.(float64)
			if !ok {
				putFloatBuf(buf)
				return anyColumn(rows, c)
			}
			buf[i] = x
			if col.Valid != nil {
				col.Valid.Set(i)
			}
		}
		col.Floats = buf
	case string:
		if !buildStringColumn(col, rows, c, first) {
			return anyColumn(rows, c)
		}
	case bool:
		col.Type = ColBool
		buf := getBoolBuf(n)
		for i := first; i < n; i++ {
			v := colValue(rows[i], c)
			if v == nil {
				ensureValid(col, n, i)
				continue
			}
			x, ok := v.(bool)
			if !ok {
				putBoolBuf(buf)
				return anyColumn(rows, c)
			}
			buf[i] = x
			if col.Valid != nil {
				col.Valid.Set(i)
			}
		}
		col.Bools = buf
	default:
		return anyColumn(rows, c)
	}
	return col
}

// Dictionary encoding engages while the distinct count stays below both
// bounds: a small absolute cap (keeps per-distinct predicate evaluation and
// the wire-frame dictionary cheap) and half the row count (below which plain
// storage is denser anyway).
const (
	maxDictSize    = 256
	dictMinRowsPer = 2
)

// buildStringColumn fills a ColString column in the same single pass,
// dictionary-encoding while the distinct count stays within the bounds and
// degrading to a plain string buffer when it grows past them. A non-string
// present value reports false and the caller escapes to ColAny.
func buildStringColumn(col *Column, rows []any, c, first int) bool {
	n := len(rows)
	col.Type = ColString
	codes := getCodeBuf(n)
	dict := make([]string, 0, 16)
	idx := make(map[string]uint32, 16)
	var strs []string // non-nil once the dictionary is abandoned
	for i := first; i < n; i++ {
		v := colValue(rows[i], c)
		if v == nil {
			ensureValid(col, n, i)
			continue
		}
		s, ok := v.(string)
		if !ok {
			putCodeBuf(codes)
			putStrBuf(strs)
			return false
		}
		if col.Valid != nil {
			col.Valid.Set(i)
		}
		if strs != nil {
			strs[i] = s
			continue
		}
		code, seen := idx[s]
		if !seen {
			if len(dict) >= maxDictSize {
				strs = decodePlain(col, codes, dict, first, i, n)
				putCodeBuf(codes)
				strs[i] = s
				continue
			}
			code = uint32(len(dict))
			dict = append(dict, s)
			idx[s] = code
		}
		codes[i] = code
	}
	if strs != nil {
		col.Strs = strs
		return true
	}
	if len(dict)*dictMinRowsPer > n {
		col.Strs = decodePlain(col, codes, dict, first, n, n)
		putCodeBuf(codes)
		return true
	}
	col.Dict, col.Codes = dict, codes
	addDictColumn()
	return true
}

// decodePlain materializes rows [first, upto) of a partially
// dictionary-encoded column into a plain length-n string buffer (holes stay
// the empty string, masked by the validity bitmap).
func decodePlain(col *Column, codes []uint32, dict []string, first, upto, n int) []string {
	strs := getStrBuf(n)
	for j := first; j < upto; j++ {
		if col.Valid == nil || col.Valid.Test(j) {
			strs[j] = dict[codes[j]]
		}
	}
	return strs
}

func anyColumn(rows []any, c int) *Column {
	col := &Column{Type: ColAny, Anys: getAnyBuf(len(rows))}
	for i, q := range rows {
		col.Anys[i] = colValue(q, c)
	}
	return col
}

// AppendRows appends every row of the batch to dst in row-major form.
func (b *ColumnBatch) AppendRows(dst []any) []any { return b.EmitRows(dst, nil, nil) }

// CloneForWrite returns a batch that shares everything with b except the
// listed columns, whose numeric buffers are deep-copied so in-place rewrites
// (ApplyNumExpr) don't leak into other consumers of a shared batch — cached
// partitions, re-read spill files. Only numeric columns ever get rewritten
// (VecMapOK gates that), so string/bool/escape buffers stay shared. The
// Cols and dirty slices themselves are always copied.
func (b *ColumnBatch) CloneForWrite(cols []int) *ColumnBatch {
	nb := &ColumnBatch{n: b.n, scalar: b.scalar, rows: b.rows}
	nb.Cols = append([]*Column(nil), b.Cols...)
	nb.dirty = append([]bool(nil), b.dirty...)
	for _, c := range cols {
		if c < 0 || c >= len(nb.Cols) || nb.Cols[c] == nil {
			continue
		}
		col := *nb.Cols[c]
		if col.Ints != nil {
			col.Ints = append([]int64(nil), col.Ints...)
		}
		if col.Floats != nil {
			col.Floats = append([]float64(nil), col.Floats...)
		}
		nb.Cols[c] = &col
	}
	return nb
}

// EmitRows appends the selected rows (sel nil = all, in order) to dst,
// projected to the proj columns (nil = every column in order). Columns the
// kernel never rewrote re-emit the original boxed values; a clean batch with
// identity projection re-emits the original quanta without allocating.
func (b *ColumnBatch) EmitRows(dst []any, sel []int, proj []int) []any {
	if b.scalar {
		if sel == nil {
			for i := 0; i < b.n; i++ {
				dst = append(dst, b.value(0, i))
			}
			return dst
		}
		for _, i := range sel {
			dst = append(dst, b.value(0, i))
		}
		return dst
	}
	if proj == nil && b.rows != nil && !b.anyDirty() {
		if sel == nil {
			return append(dst, b.rows...)
		}
		for _, i := range sel {
			dst = append(dst, b.rows[i])
		}
		return dst
	}
	cols := proj
	if cols == nil {
		cols = make([]int, len(b.Cols))
		for c := range cols {
			cols[c] = c
		}
	}
	if sel == nil {
		for i := 0; i < b.n; i++ {
			dst = append(dst, b.emitRecord(i, cols))
		}
		return dst
	}
	for _, i := range sel {
		dst = append(dst, b.emitRecord(i, cols))
	}
	return dst
}

func (b *ColumnBatch) emitRecord(i int, cols []int) Record {
	rec := make(Record, len(cols))
	for j, c := range cols {
		rec[j] = b.value(c, i)
	}
	return rec
}

func (b *ColumnBatch) anyDirty() bool {
	for _, d := range b.dirty {
		if d {
			return true
		}
	}
	return false
}

// value returns the boxed value of column c at row i, reusing the original
// boxed value when the column was never rewritten.
func (b *ColumnBatch) value(c, i int) any {
	if b.rows != nil && !b.dirty[c] {
		if b.scalar {
			return b.rows[i]
		}
		return b.rows[i].(Record)[c]
	}
	return b.boxed(c, i)
}

// boxed boxes column c's row-i value from the typed buffers.
func (b *ColumnBatch) boxed(c, i int) any {
	col := b.Cols[c]
	if col.Valid != nil && !col.Valid.Test(i) {
		return nil
	}
	switch col.Type {
	case ColInt64:
		return col.Ints[i]
	case ColFloat64:
		return col.Floats[i]
	case ColString:
		return col.Str(i)
	case ColBool:
		return col.Bools[i]
	default:
		return col.Anys[i]
	}
}

// --- vectorized column operators -----------------------------------------

// predMask decomposes a comparison operator into which of the three
// orderings (<, ==, >) satisfy it, so filter loops test without branching on
// the operator per row. An unknown operator keeps nothing, like Eval.
func predMask(op PredOp) (lt, eq, gt bool) {
	switch op {
	case PredEq:
		return false, true, false
	case PredLt:
		return true, false, false
	case PredLe:
		return true, true, false
	case PredGt:
		return false, false, true
	case PredGe:
		return false, true, true
	}
	return false, false, false
}

// VecFilterOK reports whether FilterSel evaluates p against column c with
// semantics identical to the row path: string predicates need a fully-valid
// string column, anything else a fully-valid numeric column. Callers fall
// back to the row kernel otherwise (which also reproduces the row path's
// panics for genuinely ill-typed data).
func (b *ColumnBatch) VecFilterOK(c int, p *Predicate) bool {
	if c < 0 || c >= len(b.Cols) {
		return false
	}
	col := b.Cols[c]
	if col == nil || col.Valid != nil {
		return false
	}
	if _, ok := p.Value.(string); ok {
		return col.Type == ColString
	}
	return col.Type == ColInt64 || col.Type == ColFloat64
}

// FilterSel evaluates p against column c for the rows in sel (nil = all) and
// appends the surviving row indices to out. Numeric comparisons run in the
// float64 domain exactly like Record.Float-based evaluation. Callers must
// have checked VecFilterOK.
func (b *ColumnBatch) FilterSel(c int, p *Predicate, sel, out []int) []int {
	col := b.Cols[c]
	lt, eq, gt := predMask(p.Op)
	if v, ok := p.Value.(string); ok {
		if col.Dict != nil {
			// Dictionary column: evaluate the predicate once per distinct
			// value, then the per-row pass is a table lookup over codes.
			match := make([]bool, len(col.Dict))
			for d, s := range col.Dict {
				if p.Op == PredPrefix {
					match[d] = len(s) >= len(v) && s[:len(v)] == v
				} else {
					match[d] = (lt && s < v) || (eq && s == v) || (gt && s > v)
				}
			}
			xs := col.Codes
			if sel == nil {
				for i := 0; i < b.n; i++ {
					if match[xs[i]] {
						out = append(out, i)
					}
				}
				return out
			}
			for _, i := range sel {
				if match[xs[i]] {
					out = append(out, i)
				}
			}
			return out
		}
		xs := col.Strs
		if p.Op == PredPrefix {
			if sel == nil {
				for i := 0; i < b.n; i++ {
					if s := xs[i]; len(s) >= len(v) && s[:len(v)] == v {
						out = append(out, i)
					}
				}
				return out
			}
			for _, i := range sel {
				if s := xs[i]; len(s) >= len(v) && s[:len(v)] == v {
					out = append(out, i)
				}
			}
			return out
		}
		if sel == nil {
			for i := 0; i < b.n; i++ {
				if s := xs[i]; (lt && s < v) || (eq && s == v) || (gt && s > v) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if s := xs[i]; (lt && s < v) || (eq && s == v) || (gt && s > v) {
				out = append(out, i)
			}
		}
		return out
	}
	w := numOf(p.Value)
	if col.Type == ColInt64 {
		xs := col.Ints
		if sel == nil {
			for i := 0; i < b.n; i++ {
				if x := float64(xs[i]); (lt && x < w) || (eq && x == w) || (gt && x > w) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if x := float64(xs[i]); (lt && x < w) || (eq && x == w) || (gt && x > w) {
				out = append(out, i)
			}
		}
		return out
	}
	xs := col.Floats
	if sel == nil {
		for i := 0; i < b.n; i++ {
			if x := xs[i]; (lt && x < w) || (eq && x == w) || (gt && x > w) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if x := xs[i]; (lt && x < w) || (eq && x == w) || (gt && x > w) {
			out = append(out, i)
		}
	}
	return out
}

// VecMapOK reports whether ApplyNumExpr can run e against column c with
// row-path-identical semantics: a fully-valid numeric column and a numeric
// operand.
func (b *ColumnBatch) VecMapOK(c int, e *MapExpr) bool {
	if c < 0 || c >= len(b.Cols) {
		return false
	}
	col := b.Cols[c]
	if col == nil || col.Valid != nil {
		return false
	}
	if col.Type != ColInt64 && col.Type != ColFloat64 {
		return false
	}
	_, ok := toFloat(e.Operand)
	return ok
}

// ApplyNumExpr rewrites column c in place for the rows in sel (nil = all)
// and marks the column dirty. Arithmetic follows MapExpr.Apply: int64
// columns stay integral under an integral operand and migrate to float64
// otherwise. Rows outside sel are dead (already filtered out) and may be
// rewritten freely. Callers must have checked VecMapOK.
func (b *ColumnBatch) ApplyNumExpr(c int, e *MapExpr, sel []int) {
	col := b.Cols[c]
	b.dirty[c] = true
	if col.Type == ColInt64 {
		if w, ok := intOperand(e.Operand); ok {
			xs := col.Ints
			switch e.Op {
			case NumAdd:
				if sel == nil {
					for i := range xs {
						xs[i] += w
					}
				} else {
					for _, i := range sel {
						xs[i] += w
					}
				}
			case NumSub:
				if sel == nil {
					for i := range xs {
						xs[i] -= w
					}
				} else {
					for _, i := range sel {
						xs[i] -= w
					}
				}
			case NumMul:
				if sel == nil {
					for i := range xs {
						xs[i] *= w
					}
				} else {
					for _, i := range sel {
						xs[i] *= w
					}
				}
			default:
				panic("core: map expr " + e.String() + ": unknown op")
			}
			return
		}
		// Integral column, fractional operand: the result domain is float64,
		// so migrate the whole column (dead rows included; they are never
		// emitted).
		fs := make([]float64, len(col.Ints))
		for i, v := range col.Ints {
			fs[i] = float64(v)
		}
		col.Ints, col.Floats, col.Type = nil, fs, ColFloat64
	}
	w, _ := toFloat(e.Operand)
	xs := col.Floats
	switch e.Op {
	case NumAdd:
		if sel == nil {
			for i := range xs {
				xs[i] += w
			}
		} else {
			for _, i := range sel {
				xs[i] += w
			}
		}
	case NumSub:
		if sel == nil {
			for i := range xs {
				xs[i] -= w
			}
		} else {
			for _, i := range sel {
				xs[i] -= w
			}
		}
	case NumMul:
		if sel == nil {
			for i := range xs {
				xs[i] *= w
			}
		} else {
			for _, i := range sel {
				xs[i] *= w
			}
		}
	default:
		panic("core: map expr " + e.String() + ": unknown op")
	}
}
