package core

import (
	"fmt"
	"strings"
)

// Plan is a RheemPlan: a directed dataflow graph of platform-agnostic
// operators. Quanta flow from source operators to sink operators. Loop
// operators nest a body Plan; the body consumes the loop-carried value
// through LoopInput (a CollectionSource placeholder) and yields the next
// value at LoopOutput.
type Plan struct {
	Name string

	ops    []*Operator
	nextID int

	// LoopInput/LoopOutput designate a loop body's carried-value endpoints.
	// They are nil for top-level plans.
	LoopInput  *Operator
	LoopOutput *Operator

	edges []PlanEdge
}

// PlanEdge is a dataflow edge of the plan, connecting an output of From to
// the To operator's input port ToPort. Broadcast edges deliver the complete
// producer output as side data rather than as the main dataflow.
type PlanEdge struct {
	From, To  *Operator
	ToPort    int
	Broadcast bool
}

// NewPlan creates an empty plan.
func NewPlan(name string) *Plan { return &Plan{Name: name} }

// Operators returns the plan's operators in insertion order.
func (p *Plan) Operators() []*Operator { return p.ops }

// Edges returns the plan's dataflow edges.
func (p *Plan) Edges() []PlanEdge { return p.edges }

// Add inserts an operator into the plan and assigns it an ID.
func (p *Plan) Add(o *Operator) *Operator {
	p.nextID++
	o.ID = p.nextID
	p.ops = append(p.ops, o)
	return o
}

// NewOperator creates, adds, and returns an operator of the given kind.
func (p *Plan) NewOperator(k Kind, label string) *Operator {
	return p.Add(&Operator{Kind: k, Label: label})
}

// Connect wires from's output to to's input port.
func (p *Plan) Connect(from, to *Operator, toPort int) {
	p.edges = append(p.edges, PlanEdge{From: from, To: to, ToPort: toPort})
	for len(to.inputs) <= toPort {
		to.inputs = append(to.inputs, nil)
	}
	to.inputs[toPort] = from
	from.outputs = append(from.outputs, to)
}

// Broadcast wires from's complete output into to as broadcast side input.
func (p *Plan) Broadcast(from, to *Operator) {
	p.edges = append(p.edges, PlanEdge{From: from, To: to, Broadcast: true})
	to.broadcasts = append(to.broadcasts, from)
	from.outputs = append(from.outputs, to)
}

// RewireInput redirects to's input port to a different producer, updating
// the edge list and both operators' adjacency. The old producer keeps any
// other edges it has. newFrom must already be part of the plan.
func (p *Plan) RewireInput(to *Operator, port int, newFrom *Operator) {
	if port >= len(to.inputs) || to.inputs[port] == nil {
		p.Connect(newFrom, to, port)
		return
	}
	old := to.inputs[port]
	to.inputs[port] = newFrom
	for i, e := range p.edges {
		if e.To == to && e.ToPort == port && e.From == old && !e.Broadcast {
			p.edges[i].From = newFrom
			break
		}
	}
	for i, out := range old.outputs {
		if out == to {
			old.outputs = append(old.outputs[:i], old.outputs[i+1:]...)
			break
		}
	}
	newFrom.outputs = append(newFrom.outputs, to)
}

// RemoveUnreachable drops every operator (and its edges) from which no sink
// or loop output can be reached, following dataflow and broadcast edges.
// It returns the removed operators. Used after cache-scan substitution to
// prune subtrees whose results now come from the cache.
func (p *Plan) RemoveUnreachable() []*Operator {
	keep := make(map[*Operator]bool, len(p.ops))
	var mark func(o *Operator)
	mark = func(o *Operator) {
		if o == nil || keep[o] {
			return
		}
		keep[o] = true
		for _, in := range o.inputs {
			mark(in)
		}
		for _, bc := range o.broadcasts {
			mark(bc)
		}
		// A loop body may reference outer-plan operators; they must survive.
		if o.Body != nil {
			for _, bo := range o.Body.ops {
				if bo.OuterRef != nil {
					mark(bo.OuterRef)
				}
			}
		}
	}
	for _, o := range p.ops {
		if o.Kind.IsSink() {
			mark(o)
		}
	}
	mark(p.LoopOutput)
	var removed []*Operator
	kept := p.ops[:0]
	for _, o := range p.ops {
		if keep[o] {
			kept = append(kept, o)
		} else {
			removed = append(removed, o)
		}
	}
	p.ops = kept
	if len(removed) == 0 {
		return nil
	}
	edges := p.edges[:0]
	for _, e := range p.edges {
		if keep[e.From] && keep[e.To] {
			edges = append(edges, e)
		}
	}
	p.edges = edges
	for _, o := range p.ops {
		outs := o.outputs[:0]
		for _, out := range o.outputs {
			if keep[out] {
				outs = append(outs, out)
			}
		}
		o.outputs = outs
	}
	return removed
}

// Chain connects a linear sequence of operators on port 0 and returns the
// last one, a convenience for pipeline construction.
func (p *Plan) Chain(ops ...*Operator) *Operator {
	for i := 1; i < len(ops); i++ {
		p.Connect(ops[i-1], ops[i], 0)
	}
	return ops[len(ops)-1]
}

// Sources returns the plan's source operators.
func (p *Plan) Sources() []*Operator {
	var out []*Operator
	for _, o := range p.ops {
		if p.inArity(o) == 0 {
			out = append(out, o)
		}
	}
	return out
}

// Sinks returns the plan's sink operators.
func (p *Plan) Sinks() []*Operator {
	var out []*Operator
	for _, o := range p.ops {
		if o.Kind.IsSink() {
			out = append(out, o)
		}
	}
	return out
}

func (p *Plan) inArity(o *Operator) int { return InArityOf(o) }

// TopoOrder returns the operators in a topological order of the dataflow
// (broadcast edges included as dependencies). It returns an error if the
// plan has a cycle; cycles are only legal inside loop bodies, which are
// nested plans and therefore acyclic at each level.
func (p *Plan) TopoOrder() ([]*Operator, error) {
	indeg := make(map[*Operator]int, len(p.ops))
	adj := make(map[*Operator][]*Operator, len(p.ops))
	for _, o := range p.ops {
		indeg[o] = 0
	}
	for _, e := range p.edges {
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	queue := make([]*Operator, 0, len(p.ops))
	for _, o := range p.ops { // deterministic: insertion order
		if indeg[o] == 0 {
			queue = append(queue, o)
		}
	}
	order := make([]*Operator, 0, len(p.ops))
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		order = append(order, o)
		for _, n := range adj[o] {
			indeg[n]--
			if indeg[n] == 0 {
				queue = append(queue, n)
			}
		}
	}
	if len(order) != len(p.ops) {
		return nil, fmt.Errorf("core: plan %q contains a cycle (%d of %d operators ordered)", p.Name, len(order), len(p.ops))
	}
	return order, nil
}

// Validate checks structural well-formedness: every input port connected,
// at least one source and one sink, acyclicity, loop bodies recursively
// valid with designated loop endpoints.
func (p *Plan) Validate() error {
	if len(p.ops) == 0 {
		return fmt.Errorf("core: plan %q is empty", p.Name)
	}
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	hasSink := false
	for _, o := range p.ops {
		in := p.inArity(o)
		if len(o.inputs) < in {
			return fmt.Errorf("core: %s has %d of %d inputs connected", o, len(o.inputs), in)
		}
		for i := 0; i < in; i++ {
			if o.inputs[i] == nil {
				return fmt.Errorf("core: %s input port %d is unconnected", o, i)
			}
		}
		if o.Kind.IsSink() {
			hasSink = true
		}
		if o.Kind.IsLoop() {
			if o.Body == nil {
				return fmt.Errorf("core: loop %s has no body", o)
			}
			if o.Body.LoopInput == nil || o.Body.LoopOutput == nil {
				return fmt.Errorf("core: loop %s body lacks designated loop input/output", o)
			}
			if o.Kind == KindRepeat && o.Params.Iterations <= 0 {
				return fmt.Errorf("core: repeat %s has no iteration count", o)
			}
			if err := o.Body.validateAsLoopBody(); err != nil {
				return fmt.Errorf("core: loop %s: %w", o, err)
			}
		}
	}
	if !hasSink && p.LoopOutput == nil {
		return fmt.Errorf("core: plan %q has no sink", p.Name)
	}
	if len(p.Sources()) == 0 && p.LoopInput == nil {
		return fmt.Errorf("core: plan %q has no source", p.Name)
	}
	return nil
}

// validateAsLoopBody validates a loop body, which may use its LoopOutput as
// the (sole) sink.
func (p *Plan) validateAsLoopBody() error {
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	found := false
	for _, o := range p.ops {
		if o == p.LoopOutput {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("loop output %s not part of body", p.LoopOutput)
	}
	found = false
	for _, o := range p.ops {
		if o == p.LoopInput {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("loop input %s not part of body", p.LoopInput)
	}
	return nil
}

// String renders the plan as an indented operator/edge listing for
// debugging and the CLI --explain mode.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RheemPlan %q\n", p.Name)
	writePlan(&b, p, "  ")
	return b.String()
}

func writePlan(b *strings.Builder, p *Plan, indent string) {
	for _, o := range p.ops {
		fmt.Fprintf(b, "%s%s", indent, o)
		if len(o.inputs) > 0 {
			fmt.Fprintf(b, " <- ")
			for i, in := range o.inputs {
				if i > 0 {
					fmt.Fprintf(b, ", ")
				}
				fmt.Fprintf(b, "%s", in)
			}
		}
		for _, bc := range o.broadcasts {
			fmt.Fprintf(b, " <~broadcast~ %s", bc)
		}
		fmt.Fprintln(b)
		if o.Body != nil {
			fmt.Fprintf(b, "%s  body (in=%s, out=%s):\n", indent, o.Body.LoopInput, o.Body.LoopOutput)
			writePlan(b, o.Body, indent+"    ")
		}
	}
}
