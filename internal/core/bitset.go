package core

import "math/bits"

// Bitset is a fixed-size dense bit set. It lives in core (rather than
// internal/algo, which re-exports it) because the columnar batch layer uses
// it for validity bitmaps and algo already depends on core.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset creates a bit set able to hold n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// BitsetFromWords reconstructs a bit set from its backing words, as produced
// by Words. The codec uses it to decode validity bitmaps.
func BitsetFromWords(words []uint64, n int) *Bitset {
	b := NewBitset(n)
	copy(b.words, words)
	return b
}

// Words exposes the backing words for serialization. Bits at positions >= Len
// are zero.
func (b *Bitset) Words() []uint64 { return b.words }

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set turns bit i on.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear turns bit i off.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is on.
func (b *Bitset) Test(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ScanFrom visits every set bit with index >= start, in increasing order,
// invoking visit for each. It is the hot loop of IEJoin.
func (b *Bitset) ScanFrom(start int, visit func(i int)) {
	b.ScanRange(start, b.n, visit)
}

// ScanRange visits every set bit in [start, end), in increasing order.
func (b *Bitset) ScanRange(start, end int, visit func(i int)) {
	if start < 0 {
		start = 0
	}
	if end > b.n {
		end = b.n
	}
	if start >= end {
		return
	}
	wi := start >> 6
	// Mask off bits below start in the first word.
	w := b.words[wi] & (^uint64(0) << (uint(start) & 63))
	for {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			if i >= end {
				return
			}
			visit(i)
			w &= w - 1
		}
		wi++
		if wi >= len(b.words) {
			return
		}
		w = b.words[wi]
	}
}
