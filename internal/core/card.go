package core

import (
	"fmt"
	"math"
)

// CardEstimate is an interval-based cardinality estimate with a confidence
// value, the optimizer's unit of uncertainty (Section 4.1, Figure 6).
type CardEstimate struct {
	Low, High  int64
	Confidence float64 // in (0, 1]
}

// ExactCard returns a certain estimate for a known cardinality.
func ExactCard(n int64) CardEstimate {
	if n < 0 {
		n = 0
	}
	return CardEstimate{Low: n, High: n, Confidence: 1}
}

// Geomean returns the geometric mean of the interval bounds, the scalar the
// cost model plugs into resource-usage functions.
func (c CardEstimate) Geomean() float64 {
	lo, hi := float64(c.Low), float64(c.High)
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = 1
	}
	return math.Sqrt(lo * hi)
}

// Mid returns the arithmetic midpoint of the interval.
func (c CardEstimate) Mid() float64 { return (float64(c.Low) + float64(c.High)) / 2 }

// Scale multiplies the interval by a selectivity factor.
func (c CardEstimate) Scale(f float64) CardEstimate {
	if f < 0 {
		f = 0
	}
	return CardEstimate{
		Low:        int64(float64(c.Low) * f),
		High:       clampMulF(float64(c.High), f),
		Confidence: c.Confidence,
	}
}

// Add sums two interval estimates; confidence is the minimum of the two.
func (c CardEstimate) Add(o CardEstimate) CardEstimate {
	return CardEstimate{
		Low:        clampAdd(c.Low, o.Low),
		High:       clampAdd(c.High, o.High),
		Confidence: math.Min(c.Confidence, o.Confidence),
	}
}

// Mul multiplies two interval estimates (e.g. for cartesian products).
func (c CardEstimate) Mul(o CardEstimate) CardEstimate {
	return CardEstimate{
		Low:        clampMul(c.Low, o.Low),
		High:       clampMul(c.High, o.High),
		Confidence: math.Min(c.Confidence, o.Confidence),
	}
}

// Widen grows the interval by a relative slack on both sides and decays the
// confidence accordingly, modelling estimator uncertainty.
func (c CardEstimate) Widen(slack float64) CardEstimate {
	return CardEstimate{
		Low:        int64(float64(c.Low) * (1 - slack)),
		High:       clampMulF(float64(c.High), 1+slack),
		Confidence: c.Confidence * (1 - slack/2),
	}
}

// Contains reports whether an observed cardinality falls in the interval.
func (c CardEstimate) Contains(n int64) bool { return n >= c.Low && n <= c.High }

// MismatchFactor quantifies how far an observed cardinality lies outside the
// interval (1 = inside). The progressive optimizer re-plans when this
// exceeds its threshold.
func (c CardEstimate) MismatchFactor(n int64) float64 {
	switch {
	case n < c.Low:
		if n <= 0 {
			if c.Low == 0 {
				return 1
			}
			return float64(c.Low + 1)
		}
		return float64(c.Low) / float64(n)
	case n > c.High:
		if c.High <= 0 {
			return float64(n + 1)
		}
		return float64(n) / float64(c.High)
	default:
		return 1
	}
}

func (c CardEstimate) String() string {
	return fmt.Sprintf("[%d..%d]@%.0f%%", c.Low, c.High, c.Confidence*100)
}

func clampAdd(a, b int64) int64 {
	const lim = math.MaxInt64 / 4
	if a > lim-b {
		return lim
	}
	return a + b
}

func clampMul(a, b int64) int64 {
	const lim = math.MaxInt64 / 4
	if a == 0 || b == 0 {
		return 0
	}
	if a > lim/b {
		return lim
	}
	return a * b
}

func clampMulF(a, f float64) int64 {
	const lim = float64(math.MaxInt64 / 4)
	v := a * f
	if v > lim {
		return int64(lim)
	}
	return int64(v)
}
