package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRecordAccessors(t *testing.T) {
	r := Record{int64(7), 3.5, "x", int32(2), int(9), float32(1.5)}
	if r.Int(0) != 7 || r.Int(4) != 9 {
		t.Errorf("Int: got %d, %d", r.Int(0), r.Int(4))
	}
	if r.Float(1) != 3.5 || r.Float(3) != 2 || r.Float(5) != 1.5 {
		t.Errorf("Float coercion failed: %v %v %v", r.Float(1), r.Float(3), r.Float(5))
	}
	if r.String(2) != "x" || r.String(0) != "7" {
		t.Errorf("String: got %q, %q", r.String(2), r.String(0))
	}
	c := r.Copy()
	c[0] = int64(99)
	if r.Int(0) != 7 {
		t.Error("Copy aliases the original record")
	}
}

func TestRecordFloatPanicsOnNonNumeric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-numeric Float access")
		}
	}()
	Record{"abc"}.Float(0)
}

func TestSliceDataset(t *testing.T) {
	d := NewSliceDataset([]any{1, 2, 3})
	if d.Card() != 3 {
		t.Fatalf("Card = %d, want 3", d.Card())
	}
	got := Materialize(d)
	if !reflect.DeepEqual(got, []any{1, 2, 3}) {
		t.Fatalf("Materialize = %v", got)
	}
	// Datasets are re-iterable.
	got2 := Collect(d.Open())
	if !reflect.DeepEqual(got2, []any{1, 2, 3}) {
		t.Fatalf("second iteration = %v", got2)
	}
}

func TestFuncIterator(t *testing.T) {
	n := 0
	it := FuncIterator(func() (any, bool) {
		if n >= 2 {
			return nil, false
		}
		n++
		return n, true
	})
	if got := Collect(it); !reflect.DeepEqual(got, []any{1, 2}) {
		t.Fatalf("Collect = %v", got)
	}
}

func TestCompareAnyTotalOrder(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{1, 2, -1},
		{2.5, 2.5, 0},
		{int64(3), 2, 1},
		{1, "a", -1},    // numbers before strings
		{"a", "b", -1},  // string order
		{"a", 1.0, 1},   // symmetric
		{"x", KV{}, -1}, // strings before composites
		{KV{Key: 1}, "x", 1},
		{Record{1}, Record{1}, 0},
	}
	for _, c := range cases {
		if got := CompareAny(c.a, c.b); got != c.want {
			t.Errorf("CompareAny(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAnyAntisymmetryProperty(t *testing.T) {
	f := func(a, b float64, s1, s2 string, pick int) bool {
		vals := []any{a, b, s1, s2, int64(pick)}
		x := vals[abs(pick)%len(vals)]
		y := vals[abs(pick*31+7)%len(vals)]
		return CompareAny(x, y) == -CompareAny(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSortAny(t *testing.T) {
	data := []any{3, 1, 2}
	SortAny(data, func(a, b any) bool { return a.(int) < b.(int) })
	if !reflect.DeepEqual(data, []any{1, 2, 3}) {
		t.Fatalf("SortAny = %v", data)
	}
}

func TestGroupKeyScalarsIdentity(t *testing.T) {
	for _, v := range []any{1, int64(2), "s", 2.5, true, nil} {
		if GroupKey(v) != v {
			t.Errorf("GroupKey(%v) changed the scalar", v)
		}
	}
	// Composite keys map to a stable comparable representation.
	k1 := GroupKey(Record{1, "a"})
	k2 := GroupKey(Record{1, "a"})
	if k1 != k2 {
		t.Errorf("GroupKey not stable for equal records: %v vs %v", k1, k2)
	}
}

func TestCardEstimateArithmetic(t *testing.T) {
	a := CardEstimate{Low: 10, High: 20, Confidence: 0.8}
	b := CardEstimate{Low: 5, High: 5, Confidence: 1}

	sum := a.Add(b)
	if sum.Low != 15 || sum.High != 25 || sum.Confidence != 0.8 {
		t.Errorf("Add = %+v", sum)
	}
	prod := a.Mul(b)
	if prod.Low != 50 || prod.High != 100 {
		t.Errorf("Mul = %+v", prod)
	}
	sc := a.Scale(0.5)
	if sc.Low != 5 || sc.High != 10 {
		t.Errorf("Scale = %+v", sc)
	}
	w := b.Widen(0.2)
	if w.Low != 4 || w.High != 6 || w.Confidence >= 1 {
		t.Errorf("Widen = %+v", w)
	}
}

func TestCardEstimateOverflowClamps(t *testing.T) {
	huge := CardEstimate{Low: math.MaxInt64 / 8, High: math.MaxInt64 / 8, Confidence: 1}
	prod := huge.Mul(huge)
	if prod.High <= 0 {
		t.Fatalf("Mul overflowed: %+v", prod)
	}
	sum := huge.Add(huge.Add(huge))
	if sum.High <= 0 {
		t.Fatalf("Add overflowed: %+v", sum)
	}
}

func TestCardEstimateMismatchFactor(t *testing.T) {
	c := CardEstimate{Low: 100, High: 200, Confidence: 0.9}
	if f := c.MismatchFactor(150); f != 1 {
		t.Errorf("inside factor = %v", f)
	}
	if f := c.MismatchFactor(400); f != 2 {
		t.Errorf("above factor = %v", f)
	}
	if f := c.MismatchFactor(50); f != 2 {
		t.Errorf("below factor = %v", f)
	}
	if f := c.MismatchFactor(0); f <= 1 {
		t.Errorf("zero observed should mismatch, got %v", f)
	}
}

func TestCardEstimateGeomeanProperty(t *testing.T) {
	f := func(lo, hi uint32) bool {
		l, h := int64(lo%1_000_000), int64(hi%1_000_000)
		if l > h {
			l, h = h, l
		}
		c := CardEstimate{Low: l, High: h, Confidence: 1}
		g := c.Geomean()
		// Geomean lies within the (1-clamped) interval bounds.
		lof, hif := float64(l), float64(h)
		if lof < 1 {
			lof = 1
		}
		if hif < 1 {
			hif = 1
		}
		return g >= lof-1e-9 && g <= hif+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExactCard(t *testing.T) {
	c := ExactCard(42)
	if c.Low != 42 || c.High != 42 || c.Confidence != 1 {
		t.Errorf("ExactCard = %+v", c)
	}
	if n := ExactCard(-5); n.Low != 0 || n.High != 0 {
		t.Errorf("negative clamps to zero: %+v", n)
	}
}

func TestCostIntervalArithmetic(t *testing.T) {
	a := CostInterval{LowMs: 10, HighMs: 30, Confidence: 0.5}
	b := CostInterval{LowMs: 1, HighMs: 2, Confidence: 0.9}
	s := a.Add(b)
	if s.LowMs != 11 || s.HighMs != 32 || s.Confidence != 0.5 {
		t.Errorf("Add = %+v", s)
	}
	// Adding to a zero-confidence (unset) interval inherits the other side.
	z := CostInterval{}.Add(b)
	if z.Confidence != 0.9 {
		t.Errorf("zero-confidence Add = %+v", z)
	}
	sc := a.Scale(3)
	if sc.LowMs != 30 || sc.HighMs != 90 {
		t.Errorf("Scale = %+v", sc)
	}
	g := CostInterval{LowMs: 4, HighMs: 9, Confidence: 1}.Geomean()
	if math.Abs(g-6) > 1e-6 {
		t.Errorf("Geomean(4,9) = %v, want 6", g)
	}
}

func TestQuantumCodecRoundTrip(t *testing.T) {
	quanta := []any{
		"hello",
		3.25,
		int64(-7),
		true,
		Record{float64(1), "a", Record{float64(2)}},
		KV{Key: "k", Value: float64(5)},
		Edge{Src: 3, Dst: 9},
		Group{Key: "g", Values: []any{float64(1), "x"}},
	}
	for _, q := range quanta {
		line, err := EncodeQuantum(q)
		if err != nil {
			t.Fatalf("encode %v: %v", q, err)
		}
		back, err := DecodeQuantum(line)
		if err != nil {
			t.Fatalf("decode %v: %v", q, err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Errorf("round trip %T: got %#v, want %#v", q, back, q)
		}
	}
}

func TestQuantaFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/quanta.jsonl"
	in := []any{"a", Record{float64(1), "b"}, KV{Key: float64(1), Value: "v"}}
	if err := WriteQuantaFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadQuantaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %#v, want %#v", out, in)
	}
}

func TestTextFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/text.txt"
	if err := WriteTextFile(path, []any{"line one", "line two"}, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTextFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []any{"line one", "line two"}) {
		t.Fatalf("got %v", out)
	}
}

func TestReadTextFileMissing(t *testing.T) {
	if _, err := ReadTextFile("/nonexistent/path/x.txt"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestInequalityHolds(t *testing.T) {
	cases := []struct {
		iq   Inequality
		a, b float64
		want bool
	}{
		{Less, 1, 2, true}, {Less, 2, 2, false},
		{LessEq, 2, 2, true}, {LessEq, 3, 2, false},
		{Greater, 3, 2, true}, {Greater, 2, 2, false},
		{GreaterEq, 2, 2, true}, {GreaterEq, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.iq.Holds(c.a, c.b); got != c.want {
			t.Errorf("%v.Holds(%v,%v) = %v", c.iq, c.a, c.b, got)
		}
	}
	for iq, s := range map[Inequality]string{Less: "<", LessEq: "<=", Greater: ">", GreaterEq: ">="} {
		if iq.String() != s {
			t.Errorf("String() = %q, want %q", iq.String(), s)
		}
	}
}

func TestQuantumCodecPreservesNestedIntegers(t *testing.T) {
	// Data movement through files must not turn nested int64s into
	// float64s — UDFs downstream of a conversion depend on exact types.
	quanta := []any{
		core_KVInt(),
		Record{int64(7), KV{Key: "n", Value: int64(3)}},
		Group{Key: int64(2), Values: []any{int64(4), Record{int64(5)}}},
		[]float64{1.5, 2.5},
		nil,
		[]any{int64(1), "mixed", 2.5},
	}
	for _, q := range quanta {
		line, err := EncodeQuantum(q)
		if err != nil {
			t.Fatalf("encode %v: %v", q, err)
		}
		back, err := DecodeQuantum(line)
		if err != nil {
			t.Fatalf("decode %v: %v", q, err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Errorf("nested round trip: got %#v, want %#v", back, q)
		}
	}
}

func core_KVInt() KV { return KV{Key: "w", Value: int64(1)} }
