package core

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// benchQuantaSet is a fixed mixed workload: the nested shapes real shuffle
// and cache traffic carries (records, KVs, groups, strings, vectors). A
// fixed seed keeps the JSON and binary benchmarks byte-comparable.
func benchQuantaSet() []any {
	r := rand.New(rand.NewSource(1))
	out := make([]any, 256)
	for i := range out {
		out[i] = randQuantum(r, 3)
	}
	return out
}

// BenchmarkEncodeQuantumJSON: the legacy wire format — tagged JSON, one
// document per quantum — measured as a full encode+decode round trip.
func BenchmarkEncodeQuantumJSON(b *testing.B) {
	quanta := benchQuantaSet()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line, err := EncodeQuantum(quanta[i%len(quanta)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeQuantum(line); err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(line))
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "wire_bytes/op")
}

// BenchmarkEncodeQuantumBinary: the binary codec on the same workload, with
// the buffer reuse every hot path gets via AppendQuantumBinary.
func BenchmarkEncodeQuantumBinary(b *testing.B) {
	quanta := benchQuantaSet()
	var buf []byte
	var err error
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendQuantumBinary(buf[:0], quanta[i%len(quanta)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeQuantumBinary(buf); err != nil {
			b.Fatal(err)
		}
		bytes += int64(len(buf))
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "wire_bytes/op")
}

// BenchmarkQuantaFileRoundTrip: a whole quanta file written and read back,
// the unit of work for every materialized channel.
func BenchmarkQuantaFileRoundTrip(b *testing.B) {
	quanta := benchQuantaSet()
	path := filepath.Join(b.TempDir(), "bench.rqb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteQuantaFile(path, quanta); err != nil {
			b.Fatal(err)
		}
		out, err := ReadQuantaFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(quanta) {
			b.Fatalf("read %d quanta, want %d", len(out), len(quanta))
		}
	}
}
