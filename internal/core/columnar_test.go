package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// --- batch construction and row round trips -------------------------------

func TestBatchFromRowsTypedColumns(t *testing.T) {
	rows := []any{
		Record{int64(1), 1.5, "a", true},
		Record{int64(2), 2.5, "b", false},
		Record{int64(3), 3.5, "c", true},
	}
	b, ok := BatchFromRows(rows)
	if !ok {
		t.Fatal("BatchFromRows failed on uniform records")
	}
	if b.Len() != 3 || b.Width() != 4 || b.Scalar() {
		t.Fatalf("len=%d width=%d scalar=%v", b.Len(), b.Width(), b.Scalar())
	}
	for c, want := range []ColType{ColInt64, ColFloat64, ColString, ColBool} {
		if b.Cols[c].Type != want {
			t.Fatalf("col %d type = %s, want %s", c, b.Cols[c].Type, want)
		}
		if b.Cols[c].Valid != nil {
			t.Fatalf("col %d has a validity bitmap with no nulls", c)
		}
	}
	got := b.AppendRows(nil)
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip %v, want %v", got, rows)
	}
}

func TestBatchFromRowsNullsAndEscape(t *testing.T) {
	rows := []any{
		Record{int64(1), nil, "x"},
		Record{nil, KV{Key: "k", Value: int64(2)}, "y"},
		Record{int64(3), 2.5, nil},
	}
	b, ok := BatchFromRows(rows)
	if !ok {
		t.Fatal("BatchFromRows failed")
	}
	// Col 0: int64 with nulls; col 1: mixed → escape; col 2: string with nulls.
	if b.Cols[0].Type != ColInt64 || b.Cols[0].Valid == nil {
		t.Fatalf("col 0: type %s valid %v", b.Cols[0].Type, b.Cols[0].Valid)
	}
	if b.Cols[1].Type != ColAny {
		t.Fatalf("mixed col 1 type = %s, want any", b.Cols[1].Type)
	}
	if b.Cols[2].Type != ColString || b.Cols[2].Valid == nil {
		t.Fatalf("col 2: type %s", b.Cols[2].Type)
	}
	if got := b.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip %v, want %v", got, rows)
	}
}

func TestBatchFromRowsScalar(t *testing.T) {
	rows := []any{int64(7), int64(8), int64(9)}
	b, ok := BatchFromRows(rows)
	if !ok || !b.Scalar() || b.Width() != 1 {
		t.Fatalf("scalar batch: ok=%v scalar=%v width=%d", ok, b.Scalar(), b.Width())
	}
	if got := b.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip %v, want %v", got, rows)
	}
	// Go int is not a column kind: the batch must refuse, not coerce.
	if _, ok := BatchFromRows([]any{1, 2, 3}); ok {
		t.Fatal("BatchFromRows accepted Go ints as scalars")
	}
}

func TestBatchFromRowsRejects(t *testing.T) {
	cases := map[string][]any{
		"empty":         {},
		"mixed widths":  {Record{int64(1)}, Record{int64(1), int64(2)}},
		"kv":            {KV{Key: "a", Value: int64(1)}},
		"record+scalar": {Record{int64(1)}, int64(2)},
		"slices":        {[]any{int64(1)}},
	}
	for name, rows := range cases {
		if _, ok := BatchFromRows(rows); ok {
			t.Errorf("%s: BatchFromRows accepted %v", name, rows)
		}
	}
}

// allNilRows exercises the all-nil column escape: no typed value ever seen.
func TestBatchFromRowsAllNilColumn(t *testing.T) {
	rows := []any{Record{nil, int64(1)}, Record{nil, int64(2)}}
	b, ok := BatchFromRows(rows)
	if !ok {
		t.Fatal("BatchFromRows failed")
	}
	if b.Cols[0].Type != ColAny {
		t.Fatalf("all-nil col type = %s, want any", b.Cols[0].Type)
	}
	if got := b.AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip %v, want %v", got, rows)
	}
}

// --- column codec ---------------------------------------------------------

// randBatchRows generates a random batchable row set: either scalars or
// records with per-column value generators covering all four typed kinds,
// nulls, and the mixed escape.
func randBatchRows(rng *rand.Rand) []any {
	n := 1 + rng.Intn(200)
	if rng.Intn(4) == 0 { // scalars
		rows := make([]any, n)
		for i := range rows {
			switch rng.Intn(4) {
			case 0:
				rows[i] = rng.Int63n(1000) - 500
			case 1:
				rows[i] = rng.Float64() * 100
			case 2:
				rows[i] = fmt.Sprintf("s%d", rng.Intn(50))
			default:
				rows[i] = rng.Intn(2) == 0
			}
		}
		return rows
	}
	w := 1 + rng.Intn(5)
	kinds := make([]int, w)
	for c := range kinds {
		kinds[c] = rng.Intn(7) // 0-3 typed, 4 typed+nulls, 5 mixed, 6 all-nil
	}
	rows := make([]any, n)
	for i := range rows {
		rec := make(Record, w)
		for c := range rec {
			switch kinds[c] {
			case 0:
				rec[c] = rng.Int63n(1 << 40)
			case 1:
				rec[c] = rng.NormFloat64()
			case 2:
				rec[c] = strings.Repeat("x", rng.Intn(8)) + fmt.Sprint(rng.Intn(99))
			case 3:
				rec[c] = rng.Intn(2) == 0
			case 4:
				if rng.Intn(3) == 0 {
					rec[c] = nil
				} else {
					rec[c] = rng.Int63n(100)
				}
			case 5:
				switch rng.Intn(3) {
				case 0:
					rec[c] = rng.Int63n(100)
				case 1:
					rec[c] = rng.Float64()
				default:
					rec[c] = KV{Key: fmt.Sprint(rng.Intn(9)), Value: rng.Int63n(9)}
				}
			case 6:
				rec[c] = nil
			}
		}
		rows[i] = rec
	}
	return rows
}

func TestColumnBatchCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	for trial := 0; trial < 40; trial++ {
		rows := randBatchRows(rng)
		b, ok := BatchFromRows(rows)
		if !ok {
			t.Fatalf("trial %d: BatchFromRows failed on %v", trial, rows[0])
		}
		enc, err := AppendColumnBatchBinary(nil, b)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		q, err := DecodeQuantumBinary(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		db, ok := q.(*ColumnBatch)
		if !ok {
			t.Fatalf("trial %d: decoded %T, want *ColumnBatch", trial, q)
		}
		got := db.AppendRows(nil)
		if !reflect.DeepEqual(got, rows) {
			t.Fatalf("trial %d: round trip mismatch\n got %v\nwant %v", trial, got, rows)
		}
	}
}

func TestColumnBatchCodecBoolPackingRemainder(t *testing.T) {
	// 11 bools exercises the packed-bit remainder flush (not a multiple of 8).
	rows := make([]any, 11)
	for i := range rows {
		rows[i] = i%3 == 0
	}
	b, _ := BatchFromRows(rows)
	enc, err := AppendColumnBatchBinary(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeQuantumBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.(*ColumnBatch).AppendRows(nil); !reflect.DeepEqual(got, rows) {
		t.Fatalf("bool round trip %v, want %v", got, rows)
	}
}

func TestColumnBatchCodecCorruptionGuards(t *testing.T) {
	rows := []any{Record{int64(1), "a", true}, Record{nil, "b", false}}
	b, _ := BatchFromRows(rows)
	enc, err := AppendColumnBatchBinary(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must error, never panic or mis-decode.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeQuantumBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestEncodeSliceBatchedRoundTrip(t *testing.T) {
	// Enough rows to span multiple batch frames plus an unbatchable tail.
	var quanta []any
	for i := 0; i < 2*CodecBatchRows+100; i++ {
		quanta = append(quanta, Record{int64(i), fmt.Sprintf("r%d", i%17)})
	}
	quanta = append(quanta, KV{Key: "tail", Value: int64(1)}) // breaks batching

	var buf bytes.Buffer
	if err := WriteQuantaStream(&buf, quanta); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuantaStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, quanta) {
		t.Fatalf("stream round trip mismatch: %d vs %d quanta", len(got), len(quanta))
	}

	// The kill switch must force row framing and still round-trip.
	prev := SetColumnarDisabled(true)
	defer SetColumnarDisabled(prev)
	var rowBuf bytes.Buffer
	if err := WriteQuantaStream(&rowBuf, quanta); err != nil {
		t.Fatal(err)
	}
	if rowBuf.Len() <= buf.Len() {
		t.Fatalf("row framing (%d bytes) not larger than columnar (%d bytes)",
			rowBuf.Len(), buf.Len())
	}
	got, err = ReadQuantaStream(bytes.NewReader(rowBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, quanta) {
		t.Fatal("row-framed round trip mismatch")
	}
}

func TestTryAppendBatchSmallRunsStayRowFramed(t *testing.T) {
	small := make([]any, minBatchRows-1)
	for i := range small {
		small[i] = int64(i)
	}
	if _, ok, err := TryAppendBatch(nil, small); ok || err != nil {
		t.Fatalf("small run: ok=%v err=%v, want batching refused", ok, err)
	}
	big := make([]any, minBatchRows)
	for i := range big {
		big[i] = int64(i)
	}
	if _, ok, err := TryAppendBatch(nil, big); !ok || err != nil {
		t.Fatalf("batchable run: ok=%v err=%v", ok, err)
	}
}

// --- selection vectors and vectorized operators ---------------------------

func TestFilterSelDropAllDropNothing(t *testing.T) {
	rows := []any{
		Record{int64(1), "a"}, Record{int64(2), "b"}, Record{int64(3), "c"},
	}
	b, _ := BatchFromRows(rows)

	keepAll := &Predicate{Col: 0, Op: PredGe, Value: int64(0)}
	if !b.VecFilterOK(0, keepAll) {
		t.Fatal("VecFilterOK refused a plain int column")
	}
	sel := b.FilterSel(0, keepAll, nil, nil)
	if !reflect.DeepEqual(sel, []int{0, 1, 2}) {
		t.Fatalf("drop-nothing sel = %v", sel)
	}

	dropAll := &Predicate{Col: 0, Op: PredLt, Value: int64(0)}
	sel = b.FilterSel(0, dropAll, nil, make([]int, 0, 3))
	if len(sel) != 0 || sel == nil {
		// Empty-but-non-nil distinguishes "all filtered" from "no selection".
		t.Fatalf("drop-all sel = %v (nil=%v)", sel, sel == nil)
	}
	if out := b.EmitRows(nil, sel, nil); len(out) != 0 {
		t.Fatalf("drop-all emitted %v", out)
	}

	// String predicate on the string column, chained through a prior sel.
	strPred := &Predicate{Col: 1, Op: PredGt, Value: "a"}
	if !b.VecFilterOK(1, strPred) {
		t.Fatal("VecFilterOK refused a string column for a string predicate")
	}
	sel = b.FilterSel(1, strPred, []int{0, 2}, nil)
	if !reflect.DeepEqual(sel, []int{2}) {
		t.Fatalf("chained sel = %v, want [2]", sel)
	}

	// Mismatched domains are ineligible, not wrong.
	if b.VecFilterOK(1, keepAll) {
		t.Fatal("VecFilterOK accepted numeric predicate on string column")
	}
	if b.VecFilterOK(0, strPred) {
		t.Fatal("VecFilterOK accepted string predicate on int column")
	}
	if b.VecFilterOK(5, keepAll) {
		t.Fatal("VecFilterOK accepted out-of-range column")
	}
}

func TestFilterSelMatchesRowEval(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(100)
		rows := make([]any, n)
		useFloat := rng.Intn(2) == 0
		for i := range rows {
			if useFloat {
				rows[i] = Record{float64(rng.Intn(20)) / 2}
			} else {
				rows[i] = Record{int64(rng.Intn(20) - 10)}
			}
		}
		b, _ := BatchFromRows(rows)
		p := &Predicate{Col: 0, Op: PredOp(rng.Intn(5)), Value: float64(rng.Intn(10) - 5)}
		if !b.VecFilterOK(0, p) {
			t.Fatal("eligible batch refused")
		}
		sel := b.FilterSel(0, p, nil, nil)
		var want []int
		for i, q := range rows {
			if p.Eval(q.(Record)) {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(sel, want) && !(len(sel) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: sel %v, row eval %v (pred %s)", trial, sel, want, p)
		}
	}
}

func TestApplyNumExprIntInPlaceAndFloatMigration(t *testing.T) {
	rows := []any{Record{int64(10)}, Record{int64(20)}, Record{int64(30)}}
	b, _ := BatchFromRows(rows)
	add := &MapExpr{Col: 0, Op: NumAdd, Operand: int64(5)}
	if !b.VecMapOK(0, add) {
		t.Fatal("VecMapOK refused int column + int operand")
	}
	b.ApplyNumExpr(0, add, nil)
	if b.Cols[0].Type != ColInt64 {
		t.Fatalf("int+int migrated to %s", b.Cols[0].Type)
	}
	got := b.AppendRows(nil)
	want := []any{Record{int64(15)}, Record{int64(25)}, Record{int64(35)}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("int add: %v, want %v", got, want)
	}

	// Fractional operand migrates the column to float64, matching
	// MapExpr.Apply's result domain.
	b2, _ := BatchFromRows([]any{Record{int64(4)}, Record{int64(8)}})
	mul := &MapExpr{Col: 0, Op: NumMul, Operand: 0.5}
	b2.ApplyNumExpr(0, mul, nil)
	if b2.Cols[0].Type != ColFloat64 {
		t.Fatalf("int*0.5 column type = %s, want float64", b2.Cols[0].Type)
	}
	got = b2.AppendRows(nil)
	want = []any{Record{2.0}, Record{4.0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("float migration: %v, want %v", got, want)
	}

	// Selection-restricted rewrite: unselected rows are dead, but selected
	// rows must be rewritten and emitted from the typed buffer.
	b3, _ := BatchFromRows([]any{Record{int64(1)}, Record{int64(2)}, Record{int64(3)}})
	b3.ApplyNumExpr(0, &MapExpr{Col: 0, Op: NumSub, Operand: int64(1)}, []int{0, 2})
	got = b3.EmitRows(nil, []int{0, 2}, nil)
	want = []any{Record{int64(0)}, Record{int64(2)}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sel rewrite: %v, want %v", got, want)
	}

	// Ineligible shapes.
	sb, _ := BatchFromRows([]any{Record{"s"}})
	if sb.VecMapOK(0, add) {
		t.Fatal("VecMapOK accepted string column")
	}
	if b.VecMapOK(0, &MapExpr{Col: 0, Op: NumAdd, Operand: "x"}) {
		t.Fatal("VecMapOK accepted non-numeric operand")
	}
}

func TestEmitRowsProjection(t *testing.T) {
	rows := []any{Record{int64(1), "a", true}, Record{int64(2), "b", false}}
	b, _ := BatchFromRows(rows)
	got := b.EmitRows(nil, nil, []int{2, 0})
	want := []any{Record{true, int64(1)}, Record{false, int64(2)}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("projection: %v, want %v", got, want)
	}
	// Identity emission of a clean batch reuses the original boxed rows.
	out := b.EmitRows(nil, nil, nil)
	if &out[0] == nil || out[0].(Record)[0] != rows[0].(Record)[0] {
		t.Fatal("identity emission lost original values")
	}
}

// --- declarative expressions ----------------------------------------------

func TestEvalQuantum(t *testing.T) {
	// WholeQuantum numeric, against int64 and float64 quanta.
	p := &Predicate{Col: WholeQuantum, Op: PredGt, Value: int64(5)}
	if !p.EvalQuantum(int64(6)) || p.EvalQuantum(int64(5)) || !p.EvalQuantum(5.5) {
		t.Fatal("WholeQuantum numeric comparison wrong")
	}
	// WholeQuantum string.
	ps := &Predicate{Col: WholeQuantum, Op: PredEq, Value: "b"}
	if !ps.EvalQuantum("b") || ps.EvalQuantum("a") {
		t.Fatal("WholeQuantum string comparison wrong")
	}
	// Field predicate on a non-Record filters out rather than erroring.
	pf := &Predicate{Col: 0, Op: PredEq, Value: int64(1)}
	if pf.EvalQuantum(int64(1)) {
		t.Fatal("field predicate matched a bare scalar")
	}
	if !pf.EvalQuantum(Record{int64(1)}) {
		t.Fatal("field predicate missed a matching record")
	}
	// Non-numeric quantum under a numeric WholeQuantum predicate panics,
	// like Record.Float does.
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "not numeric") {
				t.Fatalf("panic = %v", r)
			}
		}()
		p.EvalQuantum(struct{}{})
	}()
}

func TestMapExprApply(t *testing.T) {
	// Whole-quantum int64 stays integral under an integral operand.
	e := MapExpr{Col: WholeQuantum, Op: NumMul, Operand: int64(3)}
	if got := e.Apply(int64(4)); got != int64(12) {
		t.Fatalf("int64*3 = %v (%T)", got, got)
	}
	// int operand counts as integral; int32 too.
	e2 := MapExpr{Col: WholeQuantum, Op: NumAdd, Operand: 2}
	if got := e2.Apply(int64(1)); got != int64(3) {
		t.Fatalf("int64+int = %v (%T)", got, got)
	}
	e3 := MapExpr{Col: WholeQuantum, Op: NumAdd, Operand: int32(2)}
	if got := e3.Apply(int64(1)); got != int64(3) {
		t.Fatalf("int64+int32 = %v (%T)", got, got)
	}
	// Float domain otherwise.
	if got := e.Apply(1.5); got != 4.5 {
		t.Fatalf("1.5*3 = %v", got)
	}
	e4 := MapExpr{Col: WholeQuantum, Op: NumSub, Operand: 0.5}
	if got := e4.Apply(int64(2)); got != 1.5 {
		t.Fatalf("int64-0.5 = %v (%T)", got, got)
	}

	// Field form copies the record: the input must not be mutated.
	ef := MapExpr{Col: 1, Op: NumAdd, Operand: int64(10)}
	in := Record{"k", int64(1)}
	out := ef.Apply(in).(Record)
	if out[1] != int64(11) || in[1] != int64(1) || out[0] != "k" {
		t.Fatalf("field map: out=%v in=%v", out, in)
	}
	// Fn wraps Apply.
	if got := ef.Fn()(Record{"k", int64(2)}).(Record)[1]; got != int64(12) {
		t.Fatalf("Fn = %v", got)
	}

	// Panic messages for ill-typed input.
	for _, tc := range []struct {
		e    MapExpr
		q    any
		want string
	}{
		{MapExpr{Col: 0, Op: NumAdd, Operand: int64(1)}, int64(1), "is not a Record"},
		{MapExpr{Col: WholeQuantum, Op: NumAdd, Operand: int64(1)}, "s", "is not numeric"},
		{MapExpr{Col: WholeQuantum, Op: NumAdd, Operand: "s"}, int64(1), "is not numeric"},
	} {
		func() {
			defer func() {
				if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), tc.want) {
					t.Errorf("%s on %v: panic = %v, want %q", tc.e.String(), tc.q, r, tc.want)
				}
			}()
			tc.e.Apply(tc.q)
		}()
	}
}

// --- record coercion edge cases -------------------------------------------

func TestRecordCoercionEdgeCases(t *testing.T) {
	r := Record{float32(1.5), int32(7), uint64(9), "s", int64(3), 2.5}
	if got := r.Float(0); got != 1.5 {
		t.Fatalf("Float(float32) = %v", got)
	}
	if got := r.Float(1); got != 7 {
		t.Fatalf("Float(int32) = %v", got)
	}
	if got := r.Float(2); got != 9 {
		t.Fatalf("Float(uint64) = %v", got)
	}
	if got := r.Int(1); got != 7 {
		t.Fatalf("Int(int32) = %v", got)
	}
	if got := r.Int(2); got != 9 {
		t.Fatalf("Int(uint64) = %v", got)
	}
	if got := r.Int(0); got != 1 {
		t.Fatalf("Int(float32 1.5) = %v, want truncation to 1", got)
	}
	if got := r.Int(5); got != 2 {
		t.Fatalf("Int(float64 2.5) = %v", got)
	}

	check := func(f func(), want string) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), want) {
				t.Errorf("panic = %v, want %q", r, want)
			}
		}()
		f()
	}
	check(func() { r.Float(3) }, "not numeric")
	check(func() { r.Int(3) }, "not integral")
}
