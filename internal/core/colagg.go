package core

import (
	"fmt"
	"math"
)

// Grouped-aggregation state for declarative reduce-bys (ReduceExpr). One
// AggState is the single arithmetic authority for both execution paths: the
// row-at-a-time fold absorbs boxed quanta one by one, the vectorized kernel
// absorbs whole ColumnBatches through typed per-column loops — and both
// mutate the same accumulator lanes in the same row order, so toggling the
// columnar plane can never change sink output.
//
// Aggregation is two-phase, mirroring the engines' distributed shapes:
// absorb rows → Partials() emits one mergeable record per group; a second
// state absorbs partials (AbsorbPartial) after an exchange and Finalize()
// emits the output records. Single-node engines skip the middle and call
// Finalize on the absorbing state directly. Groups are tracked in
// first-occurrence order, the order every emission uses.

// aggLane holds one aggregate's accumulators across all groups, indexed by
// group ordinal. Sum/min/max start in the int64 lane and migrate a group to
// the float64 lane when a non-int64 numeric value arrives (the MapExpr
// domain rule); count lives in the int lane; avg keeps a float64 sum plus a
// row count.
type aggLane struct {
	op     AggOp
	ints   []int64
	floats []float64
	counts []int64
	isf    []bool
}

func (l *aggLane) grow() {
	switch l.op {
	case AggSum, AggCount:
		l.ints = append(l.ints, 0)
	case AggMin:
		l.ints = append(l.ints, math.MaxInt64)
	case AggMax:
		l.ints = append(l.ints, math.MinInt64)
	}
	switch l.op {
	case AggSum, AggMin, AggMax:
		l.floats = append(l.floats, 0)
		l.isf = append(l.isf, false)
	case AggAvg:
		l.floats = append(l.floats, 0)
		l.counts = append(l.counts, 0)
	}
}

// migrate moves group g's accumulator into the float64 domain. The min/max
// int sentinels (±MaxInt64) are absorbing under min/max, so converting them
// preserves the running result.
func (l *aggLane) migrate(g int) {
	if !l.isf[g] {
		l.floats[g] = float64(l.ints[g])
		l.isf[g] = true
	}
}

// updateInt absorbs one int64 value into group g.
func (l *aggLane) updateInt(g int, v int64) {
	switch l.op {
	case AggSum:
		if l.isf[g] {
			l.floats[g] += float64(v)
		} else {
			l.ints[g] += v
		}
	case AggCount:
		l.ints[g]++
	case AggMin:
		if l.isf[g] {
			if f := float64(v); f < l.floats[g] {
				l.floats[g] = f
			}
		} else if v < l.ints[g] {
			l.ints[g] = v
		}
	case AggMax:
		if l.isf[g] {
			if f := float64(v); f > l.floats[g] {
				l.floats[g] = f
			}
		} else if v > l.ints[g] {
			l.ints[g] = v
		}
	case AggAvg:
		l.floats[g] += float64(v)
		l.counts[g]++
	}
}

// updateFloat absorbs one float64-domain value into group g, migrating
// sum/min/max accumulators out of the int64 domain first.
func (l *aggLane) updateFloat(g int, f float64) {
	switch l.op {
	case AggSum:
		l.migrate(g)
		l.floats[g] += f
	case AggCount:
		l.ints[g]++
	case AggMin:
		l.migrate(g)
		if f < l.floats[g] {
			l.floats[g] = f
		}
	case AggMax:
		l.migrate(g)
		if f > l.floats[g] {
			l.floats[g] = f
		}
	case AggAvg:
		l.floats[g] += f
		l.counts[g]++
	}
}

// update absorbs one boxed value into group g, panicking for non-numeric
// values exactly like Record.Float would in a hand-written reduce UDF.
func (l *aggLane) update(g int, e *ReduceExpr, v any) {
	if l.op == AggCount {
		l.ints[g]++
		return
	}
	if iv, ok := v.(int64); ok {
		l.updateInt(g, iv)
		return
	}
	f, ok := toFloat(v)
	if !ok {
		panic(fmt.Sprintf("core: reduce expr %s: %s value %T is not numeric", e, l.op, v))
	}
	l.updateFloat(g, f)
}

// partialWidth is the number of partial-record fields the lane contributes.
func (l *aggLane) partialWidth() int {
	if l.op == AggAvg {
		return 2
	}
	return 1
}

// AggState accumulates a ReduceExpr's groups. It is not safe for concurrent
// use; parallel engines keep one state per partition and merge partials.
type AggState struct {
	e     *ReduceExpr
	keys  []any // boxed group key per group: bare value, or Record for multi-column keys
	lanes []aggLane

	// Typed group lookup tables, split by the key's dynamic type so lookups
	// stay unboxed; dynamic-type identity matches interface-key map
	// semantics (int64(1) and float64(1) are distinct groups either way).
	intKeys   map[int64]int
	floatKeys map[float64]int
	strKeys   map[string]int
	boolKeys  map[bool]int
	anyKeys   map[any]int // multi-column and foreign-typed keys, via GroupKey

	groupScratch []int // per-batch row→group ordinals, reused across batches
}

// NewAggState creates an empty accumulator for e.
func NewAggState(e *ReduceExpr) *AggState {
	st := &AggState{e: e, lanes: make([]aggLane, len(e.Aggs))}
	for i, a := range e.Aggs {
		st.lanes[i].op = a.Op
	}
	return st
}

// Groups returns the number of distinct groups absorbed so far.
func (st *AggState) Groups() int { return len(st.keys) }

// newGroup appends a group keyed by the boxed key and returns its ordinal.
func (st *AggState) newGroup(key any) int {
	g := len(st.keys)
	st.keys = append(st.keys, key)
	for i := range st.lanes {
		st.lanes[i].grow()
	}
	return g
}

func (st *AggState) intGroup(k int64) int {
	if st.intKeys == nil {
		st.intKeys = map[int64]int{}
	}
	g, ok := st.intKeys[k]
	if !ok {
		g = st.newGroup(k)
		st.intKeys[k] = g
	}
	return g
}

func (st *AggState) floatGroup(k float64) int {
	if st.floatKeys == nil {
		st.floatKeys = map[float64]int{}
	}
	g, ok := st.floatKeys[k]
	if !ok {
		g = st.newGroup(k)
		st.floatKeys[k] = g
	}
	return g
}

func (st *AggState) strGroup(k string) int {
	if st.strKeys == nil {
		st.strKeys = map[string]int{}
	}
	g, ok := st.strKeys[k]
	if !ok {
		g = st.newGroup(k)
		st.strKeys[k] = g
	}
	return g
}

func (st *AggState) boolGroup(k bool) int {
	if st.boolKeys == nil {
		st.boolKeys = map[bool]int{}
	}
	g, ok := st.boolKeys[k]
	if !ok {
		g = st.newGroup(k)
		st.boolKeys[k] = g
	}
	return g
}

func (st *AggState) anyGroup(key any) int {
	if st.anyKeys == nil {
		st.anyKeys = map[any]int{}
	}
	gk := GroupKey(key)
	g, ok := st.anyKeys[gk]
	if !ok {
		g = st.newGroup(key)
		st.anyKeys[gk] = g
	}
	return g
}

// groupOf resolves the group ordinal for one boxed key value, creating the
// group on first sight.
func (st *AggState) groupOf(key any) int {
	switch k := key.(type) {
	case int64:
		return st.intGroup(k)
	case float64:
		return st.floatGroup(k)
	case string:
		return st.strGroup(k)
	case bool:
		return st.boolGroup(k)
	default:
		return st.anyGroup(key)
	}
}

// keyOfRow extracts the boxed group key from one input record.
func (st *AggState) keyOfRow(r Record) any {
	cols := st.e.GroupCols
	if len(cols) == 1 {
		return r[cols[0]]
	}
	k := make(Record, len(cols))
	for i, c := range cols {
		k[i] = r[c]
	}
	return k
}

// AbsorbRow folds one input quantum into the state — the row-at-a-time
// execution of the reduce expression. Non-Record quanta panic like any
// reduce UDF asserting its input type.
func (st *AggState) AbsorbRow(q any) {
	r, ok := q.(Record)
	if !ok {
		panic(fmt.Sprintf("core: reduce expr %s: quantum %T is not a Record", st.e, q))
	}
	g := st.groupOf(st.keyOfRow(r))
	for i := range st.lanes {
		l := &st.lanes[i]
		if l.op == AggCount {
			l.ints[g]++
			continue
		}
		l.update(g, st.e, r[st.e.Aggs[i].Col])
	}
}

// AbsorbRows folds a slice of quanta in order.
func (st *AggState) AbsorbRows(rows []any) {
	for _, q := range rows {
		st.AbsorbRow(q)
	}
}

// PlanBatch reports whether AbsorbBatch is guaranteed to accept the batch
// under proj for any selection drawn from it. It re-runs AbsorbBatch's
// column resolution and typing checks, but scans validity over every row
// rather than a selection — conservative (a hole a filter would drop still
// rejects the batch) and sound, since rejection just means the exact row
// path runs instead. Kernels call it before mutating the batch in place, so
// a batch that would be refused falls back before any step counts tick.
func (st *AggState) PlanBatch(b *ColumnBatch, proj []int) bool {
	if b == nil || b.scalar {
		return false
	}
	e := st.e
	phys := func(c int) *Column {
		if proj != nil {
			if c >= len(proj) {
				return nil
			}
			c = proj[c]
		}
		if c < 0 || c >= len(b.Cols) {
			return nil
		}
		return b.Cols[c]
	}
	whole := func(col *Column) bool {
		if col.Valid == nil {
			return true
		}
		for i := 0; i < b.n; i++ {
			if !col.Valid.Test(i) {
				return false
			}
		}
		return true
	}
	for _, c := range e.GroupCols {
		col := phys(c)
		if col == nil || col.Type == ColAny || !whole(col) {
			return false
		}
	}
	for _, a := range e.Aggs {
		if a.Op == AggCount {
			continue
		}
		col := phys(a.Col)
		if col == nil || (col.Type != ColInt64 && col.Type != ColFloat64) || !whole(col) {
			return false
		}
	}
	return true
}

// AbsorbBatch absorbs the selected rows of a ColumnBatch (sel nil = all)
// through typed per-column loops. proj maps the reduce expression's logical
// record fields to physical batch columns (nil = identity) — the fused
// chain's final projection. It returns false, leaving the state untouched,
// when the batch cannot reproduce row semantics exactly (scalar quanta,
// escape or ill-typed columns, validity holes among the selected rows);
// callers then absorb the emitted rows instead, which also reproduces the
// row path's panics for genuinely non-numeric data.
func (st *AggState) AbsorbBatch(b *ColumnBatch, sel []int, proj []int) bool {
	if b == nil || b.scalar {
		return false
	}
	e := st.e
	phys := func(c int) *Column {
		if proj != nil {
			if c >= len(proj) {
				return nil
			}
			c = proj[c]
		}
		if c < 0 || c >= len(b.Cols) {
			return nil
		}
		return b.Cols[c]
	}
	keyCols := make([]*Column, len(e.GroupCols))
	for i, c := range e.GroupCols {
		col := phys(c)
		if col == nil || col.Type == ColAny {
			return false
		}
		keyCols[i] = col
	}
	aggCols := make([]*Column, len(e.Aggs))
	for i, a := range e.Aggs {
		if a.Op == AggCount {
			continue
		}
		col := phys(a.Col)
		if col == nil || (col.Type != ColInt64 && col.Type != ColFloat64) {
			return false
		}
		aggCols[i] = col
	}
	// Validity awareness: holes confined to dead (unselected) rows are fine;
	// a hole among the selected rows means a nil the row path would see, so
	// the whole batch falls back before any state is touched.
	checkValid := func(col *Column) bool {
		if col.Valid == nil {
			return true
		}
		if sel == nil {
			for i := 0; i < b.n; i++ {
				if !col.Valid.Test(i) {
					return false
				}
			}
			return true
		}
		for _, i := range sel {
			if !col.Valid.Test(i) {
				return false
			}
		}
		return true
	}
	for _, col := range keyCols {
		if !checkValid(col) {
			return false
		}
	}
	for _, col := range aggCols {
		if col != nil && !checkValid(col) {
			return false
		}
	}

	// Pass 1: resolve every selected row to its group ordinal, one typed
	// column scan. Pass 2: per aggregate, one tight accumulator loop.
	nsel := b.n
	if sel != nil {
		nsel = len(sel)
	}
	if cap(st.groupScratch) < nsel {
		st.groupScratch = make([]int, nsel)
	}
	groups := st.groupScratch[:nsel]
	if len(keyCols) == 1 {
		st.groupPass(keyCols[0], sel, b.n, groups)
	} else {
		for k := 0; k < nsel; k++ {
			i := k
			if sel != nil {
				i = sel[k]
			}
			key := make(Record, len(keyCols))
			for j, col := range keyCols {
				key[j] = colBoxed(col, i)
			}
			groups[k] = st.anyGroup(key)
		}
	}
	for li := range st.lanes {
		l := &st.lanes[li]
		if l.op == AggCount {
			for _, g := range groups {
				l.ints[g]++
			}
			continue
		}
		col := aggCols[li]
		if col.Type == ColInt64 {
			xs := col.Ints
			if sel == nil {
				for i, g := range groups {
					l.updateInt(g, xs[i])
				}
			} else {
				for k, g := range groups {
					l.updateInt(g, xs[sel[k]])
				}
			}
			continue
		}
		xs := col.Floats
		if sel == nil {
			for i, g := range groups {
				l.updateFloat(g, xs[i])
			}
		} else {
			for k, g := range groups {
				l.updateFloat(g, xs[sel[k]])
			}
		}
	}
	return true
}

// groupPass fills groups[k] with the ordinal of selected row k's key, scanning
// one typed key column.
func (st *AggState) groupPass(col *Column, sel []int, n int, groups []int) {
	switch col.Type {
	case ColInt64:
		xs := col.Ints
		if sel == nil {
			for i := 0; i < n; i++ {
				groups[i] = st.intGroup(xs[i])
			}
		} else {
			for k, i := range sel {
				groups[k] = st.intGroup(xs[i])
			}
		}
	case ColFloat64:
		xs := col.Floats
		if sel == nil {
			for i := 0; i < n; i++ {
				groups[i] = st.floatGroup(xs[i])
			}
		} else {
			for k, i := range sel {
				groups[k] = st.floatGroup(xs[i])
			}
		}
	case ColString:
		if col.Dict != nil {
			// Dictionary keys: resolve each distinct code to its group once,
			// then the per-row pass is an int slab lookup.
			codeGroup := make([]int, len(col.Dict))
			for i := range codeGroup {
				codeGroup[i] = -1
			}
			xs := col.Codes
			if sel == nil {
				for i := 0; i < n; i++ {
					g := codeGroup[xs[i]]
					if g < 0 {
						g = st.strGroup(col.Dict[xs[i]])
						codeGroup[xs[i]] = g
					}
					groups[i] = g
				}
			} else {
				for k, i := range sel {
					g := codeGroup[xs[i]]
					if g < 0 {
						g = st.strGroup(col.Dict[xs[i]])
						codeGroup[xs[i]] = g
					}
					groups[k] = g
				}
			}
			return
		}
		xs := col.Strs
		if sel == nil {
			for i := 0; i < n; i++ {
				groups[i] = st.strGroup(xs[i])
			}
		} else {
			for k, i := range sel {
				groups[k] = st.strGroup(xs[i])
			}
		}
	case ColBool:
		xs := col.Bools
		if sel == nil {
			for i := 0; i < n; i++ {
				groups[i] = st.boolGroup(xs[i])
			}
		} else {
			for k, i := range sel {
				groups[k] = st.boolGroup(xs[i])
			}
		}
	}
}

// keyFields appends group g's key values to dst.
func (st *AggState) keyFields(dst Record, g int) Record {
	if len(st.e.GroupCols) == 1 {
		return append(dst, st.keys[g])
	}
	return append(dst, st.keys[g].(Record)...)
}

// Partials appends one mergeable partial record per group, in
// first-occurrence order: [group values..., lane fields...]. Sum/min/max
// contribute their current int64 or float64 accumulator, count its int64,
// avg a (float64 sum, int64 count) pair.
func (st *AggState) Partials(dst []any) []any {
	k := len(st.e.GroupCols)
	for g := range st.keys {
		rec := make(Record, 0, k+st.partialWidth())
		rec = st.keyFields(rec, g)
		for li := range st.lanes {
			l := &st.lanes[li]
			switch l.op {
			case AggSum, AggMin, AggMax:
				if l.isf[g] {
					rec = append(rec, l.floats[g])
				} else {
					rec = append(rec, l.ints[g])
				}
			case AggCount:
				rec = append(rec, l.ints[g])
			case AggAvg:
				rec = append(rec, l.floats[g], l.counts[g])
			}
		}
		dst = append(dst, rec)
	}
	return dst
}

func (st *AggState) partialWidth() int {
	w := 0
	for i := range st.lanes {
		w += st.lanes[i].partialWidth()
	}
	return w
}

// AbsorbPartial merges one partial record (as emitted by Partials) into the
// state — the second aggregation phase, run after an exchange.
func (st *AggState) AbsorbPartial(q any) {
	r, ok := q.(Record)
	if !ok {
		panic(fmt.Sprintf("core: reduce expr %s: partial %T is not a Record", st.e, q))
	}
	k := len(st.e.GroupCols)
	var key any
	if k == 1 {
		key = r[0]
	} else {
		key = Record(r[:k:k])
	}
	g := st.groupOf(key)
	f := k
	for li := range st.lanes {
		l := &st.lanes[li]
		switch l.op {
		case AggSum, AggMin, AggMax:
			l.update(g, st.e, r[f])
			f++
		case AggCount:
			l.ints[g] += r[f].(int64)
			f++
		case AggAvg:
			l.floats[g] += r[f].(float64)
			l.counts[g] += r[f+1].(int64)
			f += 2
		}
	}
}

// AbsorbPartials merges a slice of partial records in order.
func (st *AggState) AbsorbPartials(rows []any) {
	for _, q := range rows {
		st.AbsorbPartial(q)
	}
}

// Finalize appends one output record per group in first-occurrence order:
// [group values..., one value per aggregate], resolving avg to sum/count.
func (st *AggState) Finalize(dst []any) []any {
	k := len(st.e.GroupCols)
	for g := range st.keys {
		rec := make(Record, 0, k+len(st.lanes))
		rec = st.keyFields(rec, g)
		for li := range st.lanes {
			l := &st.lanes[li]
			switch l.op {
			case AggSum, AggMin, AggMax:
				if l.isf[g] {
					rec = append(rec, l.floats[g])
				} else {
					rec = append(rec, l.ints[g])
				}
			case AggCount:
				rec = append(rec, l.ints[g])
			case AggAvg:
				rec = append(rec, l.floats[g]/float64(l.counts[g]))
			}
		}
		dst = append(dst, rec)
	}
	return dst
}

// AggregateRows runs the whole expression over rows single-phase: absorb
// everything, finalize. The single-node engines' reduce-by path.
func AggregateRows(e *ReduceExpr, rows []any) []any {
	st := NewAggState(e)
	st.AbsorbRows(rows)
	return st.Finalize(nil)
}

// colBoxed boxes one value out of a typed column (validity already checked
// by the caller).
func colBoxed(col *Column, i int) any {
	switch col.Type {
	case ColInt64:
		return col.Ints[i]
	case ColFloat64:
		return col.Floats[i]
	case ColString:
		if col.Dict != nil {
			return col.Dict[col.Codes[i]]
		}
		return col.Strs[i]
	case ColBool:
		return col.Bools[i]
	default:
		return col.Anys[i]
	}
}
