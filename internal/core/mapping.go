package core

import (
	"fmt"
	"sort"
)

// ExecOpTemplate describes an execution operator: a platform-specific
// implementation of (part of) a logical operator. Templates are what
// operator mappings produce and what the cost model prices.
type ExecOpTemplate struct {
	Name     string   // unique, e.g. "spark.reduce-by"
	Platform string   // owning platform
	Kind     Kind     // logical kind this step contributes to implementing
	In       []string // acceptable input channel names, preference order, per port 0
	Out      string   // produced output channel name
	CostKey  string   // key into the cost parameter table; defaults to Name
}

// CostKeyOrName returns the cost table key for the template.
func (t ExecOpTemplate) CostKeyOrName() string {
	if t.CostKey != "" {
		return t.CostKey
	}
	return t.Name
}

// Alternative is one way to implement a logical operator: a sequence of
// execution operators on a single platform. A 1-to-1 mapping has one step;
// a 1-to-n mapping (e.g. Reduce -> GroupBy + Map on a platform without a
// native global reduce) has several. The mapping machinery supports m-to-n
// mappings through fused alternatives that cover several consecutive
// logical operators (Covers > 1).
type Alternative struct {
	Platform string
	Steps    []ExecOpTemplate
	// Covers is the number of consecutive (chain) logical operators this
	// alternative implements; 1 for plain mappings. Fused alternatives are
	// attached to the first operator of the chain.
	Covers int
}

// InChannels returns the acceptable input channels of the alternative (its
// first step's).
func (a Alternative) InChannels() []string {
	if len(a.Steps) == 0 {
		return nil
	}
	return a.Steps[0].In
}

// OutChannel returns the output channel of the alternative (its last
// step's).
func (a Alternative) OutChannel() string {
	if len(a.Steps) == 0 {
		return ""
	}
	return a.Steps[len(a.Steps)-1].Out
}

func (a Alternative) String() string {
	if len(a.Steps) == 1 {
		return a.Steps[0].Name
	}
	s := a.Platform + "["
	for i, st := range a.Steps {
		if i > 0 {
			s += "+"
		}
		s += st.Name
	}
	return s + "]"
}

// ChainPattern matches a chain of consecutive logical operator kinds and
// fuses them into a single alternative (an m-to-n mapping). Guard, when
// non-nil, can veto a match after kind comparison.
type ChainPattern struct {
	Kinds []Kind
	Guard func(ops []*Operator) bool
	Build func(ops []*Operator) Alternative
}

// MappingRegistry holds all operator mappings known to the system. Platform
// packages register their execution operators here during setup; the
// optimizer's inflation phase consults it.
type MappingRegistry struct {
	direct map[Kind][]Alternative
	chains []ChainPattern
}

// NewMappingRegistry creates an empty registry.
func NewMappingRegistry() *MappingRegistry {
	return &MappingRegistry{direct: map[Kind][]Alternative{}}
}

// Register adds an alternative implementation for a logical kind.
func (r *MappingRegistry) Register(k Kind, alt Alternative) {
	if alt.Covers == 0 {
		alt.Covers = 1
	}
	r.direct[k] = append(r.direct[k], alt)
}

// RegisterChain adds an m-to-n chain mapping.
func (r *MappingRegistry) RegisterChain(p ChainPattern) { r.chains = append(r.chains, p) }

// Alternatives returns the registered alternatives for a logical operator,
// honouring its TargetPlatform pin. Fused chain alternatives starting at op
// are included when the plan chain matches.
func (r *MappingRegistry) Alternatives(op *Operator) []Alternative {
	alts := make([]Alternative, 0, len(r.direct[op.Kind])+1)
	for _, a := range r.direct[op.Kind] {
		if op.TargetPlatform != "" && a.Platform != op.TargetPlatform {
			continue
		}
		alts = append(alts, a)
	}
	for _, cp := range r.chains {
		chain, ok := matchChain(op, cp.Kinds)
		if !ok {
			continue
		}
		if cp.Guard != nil && !cp.Guard(chain) {
			continue
		}
		a := cp.Build(chain)
		if a.Covers == 0 {
			a.Covers = len(cp.Kinds)
		}
		if op.TargetPlatform != "" && a.Platform != op.TargetPlatform {
			continue
		}
		// Respect pins of the covered operators too.
		pinned := false
		for _, c := range chain {
			if c.TargetPlatform != "" && c.TargetPlatform != a.Platform {
				pinned = true
			}
		}
		if !pinned {
			alts = append(alts, a)
		}
	}
	return alts
}

// ChainAlt is a fused alternative together with the chain of logical
// operators it covers (head first).
type ChainAlt struct {
	Alt   Alternative
	Chain []*Operator
}

// ChainAlternatives returns the fused alternatives whose pattern starts at
// op, with their covered chains. The optimizer registers each at the
// chain's tail so enumeration can treat the fused chain as one unit.
func (r *MappingRegistry) ChainAlternatives(op *Operator) []ChainAlt {
	var out []ChainAlt
	for _, cp := range r.chains {
		chain, ok := matchChain(op, cp.Kinds)
		if !ok {
			continue
		}
		if cp.Guard != nil && !cp.Guard(chain) {
			continue
		}
		a := cp.Build(chain)
		if a.Covers == 0 {
			a.Covers = len(cp.Kinds)
		}
		pinned := false
		for _, c := range chain {
			if c.TargetPlatform != "" && c.TargetPlatform != a.Platform {
				pinned = true
			}
		}
		if pinned {
			continue
		}
		out = append(out, ChainAlt{Alt: a, Chain: chain})
	}
	return out
}

// DirectAlternatives returns only the plain (non-fused) alternatives for a
// logical operator, honouring its platform pin.
func (r *MappingRegistry) DirectAlternatives(op *Operator) []Alternative {
	var alts []Alternative
	for _, a := range r.direct[op.Kind] {
		if op.TargetPlatform != "" && a.Platform != op.TargetPlatform {
			continue
		}
		alts = append(alts, a)
	}
	return alts
}

// Platforms returns the names of all platforms that registered at least one
// alternative, sorted.
func (r *MappingRegistry) Platforms() []string {
	set := map[string]bool{}
	for _, alts := range r.direct {
		for _, a := range alts {
			set[a.Platform] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// matchChain checks that op starts a linear chain of the given kinds where
// every intermediate operator has exactly one consumer (so fusing is safe).
func matchChain(op *Operator, kinds []Kind) ([]*Operator, bool) {
	chain := make([]*Operator, 0, len(kinds))
	cur := op
	for i, k := range kinds {
		if cur == nil || cur.Kind != k {
			return nil, false
		}
		chain = append(chain, cur)
		if i == len(kinds)-1 {
			break
		}
		if len(cur.outputs) != 1 {
			return nil, false
		}
		next := cur.outputs[0]
		// The next operator must consume cur on its main (only) input.
		if len(next.inputs) != 1 || next.inputs[0] != cur {
			return nil, false
		}
		cur = next
	}
	return chain, true
}

// Validate reports kinds that have no registered implementation on any
// platform, which would make plans containing them unexecutable.
func (r *MappingRegistry) Validate(p *Plan) error {
	for _, op := range p.Operators() {
		if op.Kind.IsLoop() {
			if err := r.Validate(op.Body); err != nil {
				return err
			}
			continue
		}
		if len(r.Alternatives(op)) == 0 {
			return fmt.Errorf("core: no platform implements %s", op)
		}
	}
	return nil
}
