package core

import (
	"strings"
	"testing"
)

// wcUDFs builds package-level (symbol-named) UDFs so fingerprints involving
// them are comparable across plan instances.
func fpSplit(q any) []any { return []any{q} }
func fpKey(q any) any     { return q }
func fpSum(a, b any) any  { return a }

// buildFPPlan constructs a small WordCount-shaped plan; two calls produce
// structurally identical plans with distinct operator pointers.
func buildFPPlan(path string) (*Plan, *Operator) {
	p := NewPlan("wc")
	src := p.Add(&Operator{Kind: KindTextFileSource, Label: "lines", Params: Params{Path: path}})
	fm := p.Add(&Operator{Kind: KindFlatMap, Label: "split", UDF: UDFs{FlatMap: fpSplit}})
	rb := p.Add(&Operator{Kind: KindReduceBy, Label: "count", UDF: UDFs{Key: fpKey, Reduce: fpSum}})
	sink := p.Add(&Operator{Kind: KindCollectionSink, Label: "out"})
	p.Chain(src, fm, rb, sink)
	return p, sink
}

func TestFingerprintStructuralEquivalence(t *testing.T) {
	p1, sink1 := buildFPPlan("dfs://words.txt")
	p2, sink2 := buildFPPlan("dfs://words.txt")
	fp1 := FingerprintPlan(p1, FingerprintOptions{})
	fp2 := FingerprintPlan(p2, FingerprintOptions{})
	if fp1[sink1] == nil || fp2[sink2] == nil {
		t.Fatalf("sink not fingerprinted: %v %v", fp1[sink1], fp2[sink2])
	}
	if fp1[sink1].Hash != fp2[sink2].Hash {
		t.Errorf("structurally identical plans produced different fingerprints:\n%s\n%s", fp1[sink1].Hash, fp2[sink2].Hash)
	}
	// The subtree must cover all four operators and name the source dataset.
	if got := len(fp1[sink1].Ops); got != 4 {
		t.Errorf("sink subtree covers %d ops, want 4", got)
	}
	srcs := fp1[sink1].Sources
	if len(srcs) != 1 || srcs[0].Name != "dfs://words.txt" || srcs[0].Version != 0 {
		t.Errorf("sink sources = %+v, want [{dfs://words.txt 0}]", srcs)
	}
}

func TestFingerprintParamSensitivity(t *testing.T) {
	base, sinkBase := buildFPPlan("dfs://words.txt")
	fpBase := FingerprintPlan(base, FingerprintOptions{})[sinkBase].Hash

	// A different source path must change every downstream fingerprint.
	other, sinkOther := buildFPPlan("dfs://other.txt")
	fpOther := FingerprintPlan(other, FingerprintOptions{})[sinkOther].Hash
	if fpOther == fpBase {
		t.Error("different source path produced an identical fingerprint")
	}

	// A bumped source version must change the fingerprint too.
	versioned, sinkV := buildFPPlan("dfs://words.txt")
	fpV := FingerprintPlan(versioned, FingerprintOptions{
		SourceVersion: func(name string) uint64 { return 7 },
	})[sinkV].Hash
	if fpV == fpBase {
		t.Error("bumped source version produced an identical fingerprint")
	}

	// A different operator label (distinct UDF registration) must differ.
	relabeled, sinkR := buildFPPlan("dfs://words.txt")
	relabeled.Operators()[1].Label = "tokenize"
	fpR := FingerprintPlan(relabeled, FingerprintOptions{})[sinkR].Hash
	if fpR == fpBase {
		t.Error("different operator label produced an identical fingerprint")
	}
}

func TestFingerprintCollectionContent(t *testing.T) {
	mk := func(data []any) (*Plan, *Operator) {
		p := NewPlan("coll")
		src := p.Add(&Operator{Kind: KindCollectionSource, Label: "data", Params: Params{Collection: data}})
		sink := p.Add(&Operator{Kind: KindCollectionSink, Label: "out"})
		p.Chain(src, sink)
		return p, sink
	}
	pa, sa := mk([]any{int64(1), int64(2)})
	pb, sb := mk([]any{int64(1), int64(2)})
	pc, sc := mk([]any{int64(1), int64(3)})
	ha := FingerprintPlan(pa, FingerprintOptions{})[sa].Hash
	hb := FingerprintPlan(pb, FingerprintOptions{})[sb].Hash
	hc := FingerprintPlan(pc, FingerprintOptions{})[sc].Hash
	if ha != hb {
		t.Error("identical collection content produced different fingerprints")
	}
	if ha == hc {
		t.Error("different collection content produced identical fingerprints")
	}
}

func TestFingerprintSkipPoisonsDownstream(t *testing.T) {
	p, sink := buildFPPlan("dfs://words.txt")
	src := p.Operators()[0]
	fps := FingerprintPlan(p, FingerprintOptions{Skip: map[*Operator]bool{src: true}})
	if len(fps) != 0 {
		t.Errorf("skipping the source should poison all %d downstream fingerprints, got %d", 4, len(fps))
	}
	_ = sink
}

func TestFingerprintLoopsExcluded(t *testing.T) {
	p := NewPlan("loop")
	src := p.Add(&Operator{Kind: KindCollectionSource, Label: "init", Params: Params{Collection: []any{int64(0)}}})
	body := NewPlan("body")
	in := body.Add(&Operator{Kind: KindCollectionSource, Label: "loop-in"})
	step := body.Add(&Operator{Kind: KindMap, Label: "step", UDF: UDFs{Map: fpKey}})
	body.Chain(in, step)
	body.LoopInput, body.LoopOutput = in, step
	loop := p.Add(&Operator{Kind: KindRepeat, Label: "iterate", Params: Params{Iterations: 3}, Body: body})
	sink := p.Add(&Operator{Kind: KindCollectionSink, Label: "out"})
	p.Chain(src, loop, sink)

	fps := FingerprintPlan(p, FingerprintOptions{})
	if fps[loop] != nil {
		t.Error("loop operator must not be fingerprintable")
	}
	if fps[sink] != nil {
		t.Error("sink downstream of a loop must not be fingerprintable")
	}
	if fps[src] == nil {
		t.Error("source upstream of the loop should still be fingerprintable")
	}
}

// TestFingerprintGolden pins the canonical hash of a UDF-free plan. This
// guards restart stability (and unintentional canonicalization changes):
// the hash depends only on operator kinds, labels, params, wiring, and the
// quantum codec — never on process state. Update the constant only when the
// canonicalization rules deliberately change.
func TestFingerprintGolden(t *testing.T) {
	p := NewPlan("golden")
	src := p.Add(&Operator{Kind: KindCollectionSource, Label: "nums",
		Params: Params{Collection: []any{int64(1), int64(2), int64(3)}}})
	dist := p.Add(&Operator{Kind: KindDistinct, Label: "dedup"})
	cnt := p.Add(&Operator{Kind: KindCount, Label: "count"})
	sink := p.Add(&Operator{Kind: KindCollectionSink, Label: "out"})
	p.Chain(src, dist, cnt, sink)

	fps := FingerprintPlan(p, FingerprintOptions{})
	info := fps[sink]
	if info == nil {
		t.Fatal("golden plan sink not fingerprinted")
	}
	// Re-pinned when collection content-hashing moved from the tagged-JSON
	// codec to the binary codec (same canonicalization rules, new encoding).
	const golden = "235ead22fd71400c1363b4ca46dcbcd181089f61d4d217dfaa5590c3afb95c2b"
	if info.Hash != golden {
		t.Errorf("golden fingerprint drifted:\n got %s\nwant %s", info.Hash, golden)
	}
}

func TestFingerprintSinkRewireChangesHash(t *testing.T) {
	// Rewiring a sink onto a different subtree must change its fingerprint
	// (the substitution pass relies on this).
	p, sink := buildFPPlan("dfs://words.txt")
	before := FingerprintPlan(p, FingerprintOptions{})[sink].Hash
	scan := p.Add(&Operator{Kind: KindCollectionSource, Label: "replacement",
		Params: Params{Collection: []any{"x"}}})
	p.RewireInput(sink, 0, scan)
	removed := p.RemoveUnreachable()
	if len(removed) != 3 {
		t.Errorf("expected 3 pruned operators, got %d", len(removed))
	}
	after := FingerprintPlan(p, FingerprintOptions{})[sink].Hash
	if after == before {
		t.Error("rewired sink kept its old fingerprint")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("rewired plan invalid: %v", err)
	}
	if !strings.Contains(p.String(), "replacement") {
		t.Error("replacement source missing from plan")
	}
}
