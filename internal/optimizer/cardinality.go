package optimizer

import (
	"rheem/internal/core"
	"rheem/internal/storage/dfs"
)

// SourceResolver estimates the output cardinality of a source operator
// (file sampling, table statistics, ...). Returning false defers to the
// operator's own estimator.
type SourceResolver func(op *core.Operator) (core.CardEstimate, bool)

// ChainResolvers combines resolvers; the first that answers wins.
func ChainResolvers(rs ...SourceResolver) SourceResolver {
	return func(op *core.Operator) (core.CardEstimate, bool) {
		for _, r := range rs {
			if r == nil {
				continue
			}
			if est, ok := r(op); ok {
				return est, true
			}
		}
		return core.CardEstimate{}, false
	}
}

// DFSSourceResolver estimates text-file source cardinalities by sampling
// the first block: lines ~= fileSize / avgLineLength (Section 4.1: "it
// first computes the output cardinalities of the source operators via
// sampling").
func DFSSourceResolver(store *dfs.Store) SourceResolver {
	return func(op *core.Operator) (core.CardEstimate, bool) {
		if op.Kind != core.KindTextFileSource || store == nil || !dfs.IsPath(op.Params.Path) {
			return core.CardEstimate{}, false
		}
		name := dfs.TrimScheme(op.Params.Path)
		size, blocks, err := store.Stat(name)
		if err != nil {
			return core.CardEstimate{}, false
		}
		if size == 0 {
			return core.ExactCard(0), true
		}
		sample, err := store.ReadBlockLines(name, 0)
		if err != nil || len(sample) == 0 {
			return core.CardEstimate{}, false
		}
		var sampleBytes int64
		for _, l := range sample {
			sampleBytes += int64(len(l)) + 1
		}
		avg := float64(sampleBytes) / float64(len(sample))
		est := float64(size) / avg
		conf := 0.9
		if len(blocks) == 1 {
			// The sample covered the whole file: the count is exact.
			return core.ExactCard(int64(len(sample))), true
		}
		return core.CardEstimate{
			Low:        int64(est * 0.8),
			High:       int64(est*1.2) + 1,
			Confidence: conf,
		}, true
	}
}

// TableStatsResolver answers table-source cardinalities from live table
// statistics (the DBMS's own row counts).
func TableStatsResolver(lookup func(store, table string) (int64, bool)) SourceResolver {
	return func(op *core.Operator) (core.CardEstimate, bool) {
		if op.Kind != core.KindTableSource {
			return core.CardEstimate{}, false
		}
		n, ok := lookup(op.Params.Store, op.Params.Table)
		if !ok {
			return core.CardEstimate{}, false
		}
		if op.Params.Where != nil {
			// Predicated scans: assume 1/3 selectivity with low confidence;
			// the progressive optimizer corrects gross misestimates.
			return core.CardEstimate{Low: n / 10, High: n, Confidence: 0.5}, true
		}
		return core.ExactCard(n), true
	}
}

// LocalFileResolver estimates local text-file sources by line counting a
// prefix (cheap because experiment inputs are modest).
func LocalFileResolver() SourceResolver {
	return func(op *core.Operator) (core.CardEstimate, bool) {
		if op.Kind != core.KindTextFileSource || dfs.IsPath(op.Params.Path) {
			return core.CardEstimate{}, false
		}
		lines, err := core.ReadTextFile(op.Params.Path)
		if err != nil {
			return core.CardEstimate{}, false
		}
		return core.ExactCard(int64(len(lines))), true
	}
}

// EstimateCards walks the plan in topological order deriving the output
// cardinality estimate of every operator, using resolve for sources,
// operator selectivity hints where given, and the per-kind estimator
// functions otherwise. Known cardinalities (from a previous partial
// execution) may be pinned via known.
func EstimateCards(p *core.Plan, resolve SourceResolver, known map[*core.Operator]int64) (map[*core.Operator]core.CardEstimate, error) {
	order, err := p.TopoOrder()
	if err != nil {
		return nil, err
	}
	cards := make(map[*core.Operator]core.CardEstimate, len(order))
	for _, op := range order {
		if n, ok := known[op]; ok {
			cards[op] = core.ExactCard(n)
			continue
		}
		var in []core.CardEstimate
		for _, producer := range op.Inputs() {
			in = append(in, cards[producer])
		}
		var est core.CardEstimate
		if core.InArityOf(op) == 0 && resolve != nil {
			if e, ok := resolve(op); ok {
				est = e
				cards[op] = est
				continue
			}
		}
		if op.Kind.IsLoop() && op.Body != nil {
			// The loop's output is its body's output after the iterations;
			// estimate one body pass seeded with the loop input estimate.
			bodyCards, err := estimateLoopBody(op, in, resolve)
			if err != nil {
				return nil, err
			}
			est = bodyCards[op.Body.LoopOutput]
		} else {
			est = core.EstimateCardOf(op, in)
		}
		cards[op] = est
	}
	return cards, nil
}

func estimateLoopBody(loop *core.Operator, loopIn []core.CardEstimate, resolve SourceResolver) (map[*core.Operator]core.CardEstimate, error) {
	seed := core.ExactCard(0)
	if len(loopIn) > 0 {
		seed = loopIn[0]
	}
	pinned := func(op *core.Operator) (core.CardEstimate, bool) {
		if op == loop.Body.LoopInput {
			return seed, true
		}
		if resolve != nil {
			return resolve(op)
		}
		return core.CardEstimate{}, false
	}
	return EstimateCards(loop.Body, pinned, nil)
}
