package optimizer

import (
	"math"
	"testing"

	"rheem/internal/core"
)

// narrowPlan builds source(n) -> map -> filter -> map -> map -> sink: a
// pipeline the engines execute as one fused kernel.
func narrowPlan(n int) *core.Plan {
	p := core.NewPlan("narrow")
	data := make([]any, n)
	for i := range data {
		data[i] = int64(i)
	}
	src := p.NewOperator(core.KindCollectionSource, "src")
	src.Params.Collection = data
	m1 := p.NewOperator(core.KindMap, "m1")
	m1.UDF.Map = func(q any) any { return q }
	f := p.NewOperator(core.KindFilter, "f")
	f.UDF.Pred = func(q any) bool { return q.(int64)%2 == 0 }
	m2 := p.NewOperator(core.KindMap, "m2")
	m2.UDF.Map = func(q any) any { return q }
	m3 := p.NewOperator(core.KindMap, "m3")
	m3.UDF.Map = func(q any) any { return q }
	sink := p.NewOperator(core.KindCollectionSink, "out")
	p.Chain(src, m1, f, m2, m3, sink)
	return p
}

func TestFusionDiscountLowersPlanCost(t *testing.T) {
	env := newTestEnv(t)

	fusedPlan, err := Optimize(narrowPlan(5000), env.opts())
	if err != nil {
		t.Fatal(err)
	}

	prev := core.SetFusionDisabled(true)
	defer core.SetFusionDisabled(prev)
	unfusedPlan, err := Optimize(narrowPlan(5000), env.opts())
	if err != nil {
		t.Fatal(err)
	}

	// With fusion on, same-platform narrow adjacency gets the per-op fixed
	// overhead discounted, so the chosen plan must cost strictly less.
	if fused, unfused := fusedPlan.Cost.Geomean(), unfusedPlan.Cost.Geomean(); fused >= unfused {
		t.Fatalf("fusion-aware cost %v not below fusion-blind cost %v", fused, unfused)
	}

	// The discount only applies to same-platform producer/consumer pairs, so
	// it must pull the whole narrow chain onto a single platform.
	if platforms := fusedPlan.Platforms(); len(platforms) != 1 {
		t.Fatalf("narrow chain split across platforms: %v", platforms)
	}
}

func TestFusedStepOverheadMs(t *testing.T) {
	ct := DefaultCostTable([]string{"spark"})
	alt := core.Alternative{Platform: "spark", Steps: []core.ExecOpTemplate{{Name: "spark.map"}}}
	got := ct.FusedStepOverheadMs(alt)
	// spark.map defaults to FixedOverhead 0.2 at MsPerFixed 6.
	if want := 0.2 * 6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("FusedStepOverheadMs = %v, want %v", got, want)
	}
	// Unknown platforms fall back to unit costs rather than zeroing the
	// discount silently.
	other := core.Alternative{Platform: "nope", Steps: []core.ExecOpTemplate{{Name: "nope.map"}}}
	if got := ct.FusedStepOverheadMs(other); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("fallback overhead = %v, want 0.2", got)
	}
}
