package optimizer

import (
	"rheem/internal/core"
)

// MarkCacheOuts marks cache-worthy operator outputs on an optimized plan:
// the materialized-result counterpart of the enumeration. For every
// fingerprinted operator whose subtree's estimated compute cost (chosen
// alternatives plus data movement, geomean of the interval bounds) reaches
// minCostMs, the execution plan records the fingerprint, the saved cost,
// and the source datasets the subtree reads. The executor publishes the
// marked outputs it happens to materialize anyway (stage terminals) to the
// result cache — marking never forces extra materialization.
//
// It returns the number of operators marked.
func MarkCacheOuts(ep *core.ExecPlan, fps map[*core.Operator]*core.FPInfo, minCostMs float64) int {
	if ep == nil || len(fps) == 0 {
		return 0
	}
	n := 0
	for op, info := range fps {
		// Caching a literal collection source would duplicate data the plan
		// already embeds (its content is the fingerprint).
		if op.Kind == core.KindCollectionSource {
			continue
		}
		cost := subtreeCostMs(ep, info)
		if cost < minCostMs {
			continue
		}
		if ep.CacheOuts == nil {
			ep.CacheOuts = map[*core.Operator]*core.CacheOut{}
		}
		ep.CacheOuts[op] = &core.CacheOut{Fingerprint: info.Hash, CostMs: cost, Sources: info.Sources}
		n++
	}
	return n
}

// subtreeCostMs sums the optimizer's estimates over a fingerprinted
// subtree: per-operator execution cost plus the data movement rooted at
// each operator's output.
func subtreeCostMs(ep *core.ExecPlan, info *core.FPInfo) float64 {
	var cost float64
	for _, op := range info.Ops {
		if a := ep.Assignments[op]; a != nil && a.CoveredBy == nil {
			cost += a.CostEst.Geomean()
		}
		if mv := ep.Movements[op]; mv != nil {
			cost += mv.CostEst.Geomean()
		}
	}
	return cost
}
