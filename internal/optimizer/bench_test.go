package optimizer

import (
	"testing"

	"rheem/internal/core"
	"rheem/internal/platform/flink"
	"rheem/internal/platform/graphmem"
	"rheem/internal/platform/spark"
	"rheem/internal/platform/streams"
	"rheem/internal/storage/dfs"
)

func benchRegistry(b *testing.B) *core.Registry {
	b.Helper()
	store, err := dfs.New(b.TempDir(), dfs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	reg := core.NewRegistry()
	for _, d := range []core.Driver{
		streams.New(store),
		spark.NewWithConfig(store, spark.Config{Parallelism: 4}),
		flink.NewWithConfig(store, flink.Config{Parallelism: 4}),
		graphmem.New(),
	} {
		if err := reg.Register(d); err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

func benchPlan(ops int) *core.Plan {
	p := core.NewPlan("bench")
	src := p.NewOperator(core.KindCollectionSource, "src")
	src.Params.Collection = []any{int64(1)}
	prev := src
	for i := 0; i < ops; i++ {
		m := p.NewOperator(core.KindMap, "m")
		m.UDF.Map = func(q any) any { return q }
		p.Connect(prev, m, 0)
		prev = m
	}
	sink := p.NewOperator(core.KindCollectionSink, "out")
	p.Connect(prev, sink, 0)
	return p
}

// BenchmarkOptimizePruned measures the lossless-pruning enumeration over
// growing plan sizes (the exhaustive alternative is k^n).
func BenchmarkOptimizePruned(b *testing.B) {
	reg := benchRegistry(b)
	for _, n := range []int{5, 15, 30} {
		b.Run("ops="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Optimize(benchPlan(n), Options{Registry: reg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizeExhaustive is the unpruned baseline (small plans only).
func BenchmarkOptimizeExhaustive(b *testing.B) {
	reg := benchRegistry(b)
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(benchPlan(6), Options{Registry: reg, Exhaustive: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConversionTree measures the Steiner-tree movement planner.
func BenchmarkConversionTree(b *testing.B) {
	reg := benchRegistry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Graph.FindTree("collection", []string{"rdd", "dataset", "file"}, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
