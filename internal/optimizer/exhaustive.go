package optimizer

import (
	"fmt"
	"math"

	"rheem/internal/core"
)

// enumerateExhaustive enumerates every combination of alternatives (no
// pruning). It exists as the ablation baseline for the lossless pruning:
// both must select plans of equal cost, while this one explodes
// combinatorially (k^n plans for n operators with k alternatives each).
func enumerateExhaustive(p *core.Plan, opts Options, inflated map[*core.Operator][]entry, cards map[*core.Operator]core.CardEstimate) (map[*core.Operator]int, float64, error) {
	var ops []*core.Operator
	for _, op := range p.Operators() {
		if op.Kind.IsLoop() {
			continue
		}
		// Exhaustive mode ignores fused chains for clarity: it enumerates
		// the direct alternatives only.
		var direct []entry
		for _, e := range inflated[op] {
			if len(e.chain) == 0 {
				direct = append(direct, e)
			}
		}
		if len(direct) == 0 {
			return nil, 0, fmt.Errorf("optimizer: exhaustive: no direct alternatives for %s", op)
		}
		inflated[op] = direct
		ops = append(ops, op)
	}
	total := 1
	for _, op := range ops {
		total *= len(inflated[op])
		if total > 5_000_000 {
			return nil, 0, fmt.Errorf("optimizer: exhaustive enumeration infeasible (> 5M plans)")
		}
	}

	bestCost := math.Inf(1)
	var bestChoice map[*core.Operator]int
	choice := map[*core.Operator]int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(ops) {
			opts.Metrics.Counter("rheem_optimizer_plans_considered_total").Inc()
			c, ok := planCost(p, opts, inflated, cards, choice)
			if ok && c < bestCost {
				bestCost = c
				bestChoice = map[*core.Operator]int{}
				for k, v := range choice {
					bestChoice[k] = v
				}
			}
			return
		}
		for ai := range inflated[ops[i]] {
			choice[ops[i]] = ai
			rec(i + 1)
		}
	}
	rec(0)
	if bestChoice == nil {
		return nil, 0, fmt.Errorf("optimizer: exhaustive: no feasible plan")
	}
	return bestChoice, bestCost, nil
}

// planCost prices a complete assignment: operator costs, movement along
// every edge, and start-up for every used platform.
func planCost(p *core.Plan, opts Options, inflated map[*core.Operator][]entry, cards map[*core.Operator]core.CardEstimate, choice map[*core.Operator]int) (float64, bool) {
	const inf = math.MaxFloat64 / 4
	total := 0.0
	used := map[string]bool{}
	for op, idx := range choice {
		ent := inflated[op][idx]
		total += opts.Costs.AlternativeCost(ent.alt, inputCard(op, ent, cards), cards[op]).Geomean() * opts.weight(ent.alt.Platform)
		used[ent.alt.Platform] = true
	}
	for _, e := range p.Edges() {
		if e.From.Kind.IsLoop() || e.To.Kind.IsLoop() {
			continue
		}
		pi, ok := choice[e.From]
		if !ok {
			continue
		}
		ci, ok := choice[e.To]
		if !ok {
			continue
		}
		from := inflated[e.From][pi].alt.OutChannel()
		var mv float64
		if e.Broadcast {
			mv = moveCost(opts, from, []string{"collection"}, cards[e.From])
		} else {
			mv = moveCost(opts, from, inflated[e.To][ci].alt.InChannels(), cards[e.From])
		}
		if mv >= inf {
			return 0, false
		}
		total += mv
	}
	for pf := range used {
		total += opts.Registry.StartupCostMs(pf) * opts.weight(pf)
	}
	return total, true
}
