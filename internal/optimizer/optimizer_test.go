package optimizer

import (
	"math"
	"strings"
	"testing"

	"rheem/internal/core"
	"rheem/internal/platform/flink"
	"rheem/internal/platform/graphmem"
	"rheem/internal/platform/relstore"
	"rheem/internal/platform/spark"
	"rheem/internal/platform/streams"
	"rheem/internal/storage/dfs"
)

// testEnv builds a registry with all platforms plus a relstore instance.
type testEnv struct {
	reg   *core.Registry
	dfs   *dfs.Store
	store *relstore.Store
	rsd   *relstore.Driver
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	store, err := dfs.New(t.TempDir(), dfs.Options{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	rs := relstore.NewStore("pg")
	rsd := relstore.New(relstore.Config{QueryLatencyMs: 0.001}, rs)
	reg := core.NewRegistry()
	for _, d := range []core.Driver{
		streams.New(store),
		spark.NewWithConfig(store, spark.Config{Parallelism: 4}),
		flink.NewWithConfig(store, flink.Config{Parallelism: 4}),
		rsd,
		graphmem.New(),
	} {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return &testEnv{reg: reg, dfs: store, store: rs, rsd: rsd}
}

func (e *testEnv) opts() Options {
	return Options{Registry: e.reg}
}

// smallPipeline builds source(n) -> map -> filter -> sink.
func smallPipeline(n int) *core.Plan {
	p := core.NewPlan("pipeline")
	data := make([]any, n)
	for i := range data {
		data[i] = int64(i)
	}
	src := p.NewOperator(core.KindCollectionSource, "src")
	src.Params.Collection = data
	m := p.NewOperator(core.KindMap, "inc")
	m.UDF.Map = func(q any) any { return q.(int64) + 1 }
	f := p.NewOperator(core.KindFilter, "even")
	f.UDF.Pred = func(q any) bool { return q.(int64)%2 == 0 }
	sink := p.NewOperator(core.KindCollectionSink, "out")
	p.Chain(src, m, f, sink)
	return p
}

func TestOptimizePicksStreamsForSmallInput(t *testing.T) {
	env := newTestEnv(t)
	ep, err := Optimize(smallPipeline(100), env.opts())
	if err != nil {
		t.Fatal(err)
	}
	platforms := ep.Platforms()
	if len(platforms) != 1 || platforms[0] != "streams" {
		t.Fatalf("small input should run on streams alone, got %v\n%s", platforms, ep)
	}
}

func TestOptimizePicksParallelForHugeInput(t *testing.T) {
	env := newTestEnv(t)
	p := core.NewPlan("huge")
	src := p.NewOperator(core.KindTextFileSource, "lines")
	src.Params.Path = "dfs://huge.txt"
	m := p.NewOperator(core.KindMap, "parse")
	m.UDF.Map = func(q any) any { return q }
	sink := p.NewOperator(core.KindCollectionSink, "out")
	p.Chain(src, m, sink)

	// Pretend the file holds 10M lines via a pinning resolver.
	opts := env.opts()
	opts.Resolve = func(op *core.Operator) (core.CardEstimate, bool) {
		if op == src {
			return core.ExactCard(10_000_000), true
		}
		return core.CardEstimate{}, false
	}
	ep, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range ep.Platforms() {
		if pf == "streams" {
			t.Fatalf("10M quanta should not run single-threaded:\n%s", ep)
		}
	}
}

func TestOptimizeHonoursPlatformPin(t *testing.T) {
	env := newTestEnv(t)
	p := smallPipeline(10)
	for _, op := range p.Operators() {
		op.TargetPlatform = "spark" // force the expensive choice
	}
	ep, err := Optimize(p, env.opts())
	if err != nil {
		t.Fatal(err)
	}
	platforms := ep.Platforms()
	if len(platforms) != 1 || platforms[0] != "spark" {
		t.Fatalf("pin ignored: %v", platforms)
	}
}

func TestOptimizeMovementForMandatoryCrossPlatform(t *testing.T) {
	// Data in relstore, task needs a Map (not executable there): the
	// optimizer must move data out via the conversion graph.
	env := newTestEnv(t)
	tab, err := env.store.CreateTable("points", []relstore.Column{{Name: "x", Type: relstore.TFloat}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tab.Insert(core.Record{float64(i)})
	}

	p := core.NewPlan("mandatory")
	src := p.NewOperator(core.KindTableSource, "points")
	src.Params.Table = "points"
	src.Params.Store = "pg"
	m := p.NewOperator(core.KindMap, "transform")
	m.UDF.Map = func(q any) any { return q }
	sink := p.NewOperator(core.KindCollectionSink, "out")
	p.Chain(src, m, sink)

	opts := env.opts()
	opts.Resolve = TableStatsResolver(func(store, table string) (int64, bool) {
		if table == "points" {
			return 1000, true
		}
		return 0, false
	})
	ep, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := ep.PlatformOf(src); got != "relstore" {
		t.Fatalf("table scan on %q, want relstore", got)
	}
	if got := ep.PlatformOf(m); got == "relstore" {
		t.Fatal("map cannot run on relstore")
	}
	mv := ep.Movements[src]
	if mv == nil || len(mv.Tree.Edges) == 0 {
		t.Fatalf("no movement planned for relation -> %s:\n%s", ep.PlatformOf(m), ep)
	}
	if mv.Tree.Edges[0].From != "relation" {
		t.Fatalf("movement should start at relation: %v", mv.Tree.Edges[0])
	}
}

func TestPrunedMatchesExhaustive(t *testing.T) {
	// The lossless pruning must find a plan with the same cost as the
	// exhaustive enumeration (the ablation check).
	env := newTestEnv(t)
	for _, n := range []int{10, 1000, 100000} {
		p := smallPipeline(n)
		opts := env.opts()
		pruned, err := Optimize(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		p2 := smallPipeline(n)
		opts.Exhaustive = true
		exhaustive, err := Optimize(p2, opts)
		if err != nil {
			t.Fatal(err)
		}
		pg, eg := pruned.Cost.Geomean(), exhaustive.Cost.Geomean()
		if math.Abs(pg-eg) > 0.02*math.Max(pg, eg)+0.5 {
			t.Errorf("n=%d: pruned cost %.3f != exhaustive %.3f\npruned:\n%s\nexhaustive:\n%s",
				n, pg, eg, pruned, exhaustive)
		}
	}
}

func TestOptimizeLoopBody(t *testing.T) {
	env := newTestEnv(t)
	p := core.NewPlan("looped")
	init := p.NewOperator(core.KindCollectionSource, "init")
	init.Params.Collection = []any{0.0}
	loop := p.NewOperator(core.KindRepeat, "iterate")
	loop.Params.Iterations = 5
	sink := p.NewOperator(core.KindCollectionSink, "out")
	p.Chain(init, loop, sink)

	body := core.NewPlan("body")
	in := body.NewOperator(core.KindCollectionSource, "loopvar")
	step := body.NewOperator(core.KindMap, "step")
	step.UDF.Map = func(q any) any { return q.(float64) + 1 }
	body.Connect(in, step, 0)
	body.LoopInput = in
	body.LoopOutput = step
	loop.Body = body

	ep, err := Optimize(p, env.opts())
	if err != nil {
		t.Fatal(err)
	}
	bodyPlan := ep.LoopBodies[loop]
	if bodyPlan == nil {
		t.Fatal("loop body not optimized")
	}
	if got := bodyPlan.PlatformOf(step); got != "streams" {
		t.Fatalf("tiny loop body should run on streams, got %q", got)
	}
	// The loop cost is scaled by the iteration count.
	la := ep.Assignments[loop]
	if la == nil || la.CostEst.Geomean() < bodyPlan.Cost.Geomean()*4 {
		t.Fatalf("loop cost %v not scaled from body cost %v", la.CostEst, bodyPlan.Cost)
	}
}

func TestOptimizeKnownCardsPinning(t *testing.T) {
	env := newTestEnv(t)
	p := smallPipeline(10)
	filter := p.Operators()[2]
	opts := env.opts()
	opts.KnownCards = map[*core.Operator]int64{filter: 7}
	ep, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := ep.Assignments[filter]
	if a.OutCard.Low != 7 || a.OutCard.High != 7 {
		t.Fatalf("known card not pinned: %v", a.OutCard)
	}
}

func TestOptimizeSelectivityHintChangesEstimates(t *testing.T) {
	env := newTestEnv(t)
	p := smallPipeline(1000)
	filter := p.Operators()[2]
	filter.Selectivity = 0.01
	ep, err := Optimize(p, env.opts())
	if err != nil {
		t.Fatal(err)
	}
	if got := ep.Assignments[filter].OutCard.High; got > 20 {
		t.Fatalf("selectivity hint ignored: out card %d", got)
	}
}

func TestOptimizeErrors(t *testing.T) {
	env := newTestEnv(t)
	if _, err := Optimize(core.NewPlan("empty"), env.opts()); err == nil {
		t.Fatal("empty plan must fail")
	}
	if _, err := Optimize(smallPipeline(1), Options{}); err == nil {
		t.Fatal("missing registry must fail")
	}
	// A plan with an unimplementable pinned op fails with a clear message.
	p := smallPipeline(1)
	p.Operators()[1].TargetPlatform = "nonexistent"
	_, err := Optimize(p, env.opts())
	if err == nil || !strings.Contains(err.Error(), "no platform implements") {
		t.Fatalf("err = %v", err)
	}
}

func TestDFSSourceResolver(t *testing.T) {
	store, err := dfs.New(t.TempDir(), dfs.Options{BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, "this-is-a-sample-line-of-text")
	}
	if err := store.WriteLines("data.txt", lines); err != nil {
		t.Fatal(err)
	}
	resolve := DFSSourceResolver(store)
	op := &core.Operator{Kind: core.KindTextFileSource, Params: core.Params{Path: "dfs://data.txt"}}
	est, ok := resolve(op)
	if !ok {
		t.Fatal("resolver did not answer")
	}
	if est.Low > 200 || est.High < 200 {
		t.Fatalf("estimate %v does not bracket 200", est)
	}
	// Non-DFS paths and other kinds defer.
	if _, ok := resolve(&core.Operator{Kind: core.KindTextFileSource, Params: core.Params{Path: "/local.txt"}}); ok {
		t.Fatal("local path should defer")
	}
	if _, ok := resolve(&core.Operator{Kind: core.KindMap}); ok {
		t.Fatal("non-source should defer")
	}
}

func TestEstimateCardsPropagation(t *testing.T) {
	p := smallPipeline(1000)
	cards, err := EstimateCards(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ops := p.Operators()
	if cards[ops[0]].Low != 1000 {
		t.Fatalf("source card %v", cards[ops[0]])
	}
	if cards[ops[1]].Low != 1000 { // map preserves
		t.Fatalf("map card %v", cards[ops[1]])
	}
	if cards[ops[2]].Low != 500 { // default filter selectivity 0.5
		t.Fatalf("filter card %v", cards[ops[2]])
	}
}

func TestCostTableRoundTrip(t *testing.T) {
	ct := DefaultCostTable([]string{"streams", "spark"})
	ct.Ops["spark.map"] = OpCostParams{CPUPerQuantum: 0.001, FixedOverhead: 2}
	path := t.TempDir() + "/costs.json"
	if err := ct.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCostTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops["spark.map"].CPUPerQuantum != 0.001 {
		t.Fatalf("round trip lost params: %+v", back.Ops["spark.map"])
	}
	clone := back.Clone()
	clone.Ops["spark.map"] = OpCostParams{CPUPerQuantum: 9}
	if back.Ops["spark.map"].CPUPerQuantum == 9 {
		t.Fatal("Clone aliases the original")
	}
}

func TestOpTimeMsMonotonicInCardinality(t *testing.T) {
	ct := DefaultCostTable([]string{"streams"})
	small := ct.OpTimeMs("streams.map", "streams", 100)
	big := ct.OpTimeMs("streams.map", "streams", 1_000_000)
	if big <= small {
		t.Fatalf("cost not monotone: %v vs %v", small, big)
	}
}

func TestMonetaryObjectiveFlipsChoice(t *testing.T) {
	// A workload big enough that the runtime objective picks a parallel
	// engine must fall back to the cheap single-node engine when optimizing
	// for money (cluster rates dwarf the driver machine's).
	env := newTestEnv(t)
	build := func() *core.Plan {
		p := core.NewPlan("money")
		src := p.NewOperator(core.KindTextFileSource, "big")
		src.Params.Path = "dfs://big.txt"
		m := p.NewOperator(core.KindMap, "work")
		m.UDF.Map = func(q any) any { return q }
		sink := p.NewOperator(core.KindCollectionSink, "out")
		p.Chain(src, m, sink)
		return p
	}
	opts := env.opts()
	opts.Resolve = func(op *core.Operator) (core.CardEstimate, bool) {
		if op.Kind == core.KindTextFileSource {
			return core.ExactCard(5_000_000), true
		}
		return core.CardEstimate{}, false
	}

	runtimePlan, err := Optimize(build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	usedParallel := false
	for _, pf := range runtimePlan.Platforms() {
		if pf == "spark" || pf == "flink" {
			usedParallel = true
		}
	}
	if !usedParallel {
		t.Fatalf("runtime objective should use a parallel engine: %v", runtimePlan.Platforms())
	}

	opts.Objective = ObjectiveMonetary
	moneyPlan, err := Optimize(build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range moneyPlan.Platforms() {
		if pf == "spark" || pf == "flink" || pf == "pregel" {
			t.Fatalf("monetary objective should avoid cluster platforms: %v", moneyPlan.Platforms())
		}
	}
}
