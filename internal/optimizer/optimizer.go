package optimizer

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rheem/internal/core"
	"rheem/internal/telemetry"
	"rheem/internal/trace"
)

// Options configure an optimization run.
type Options struct {
	Registry *core.Registry
	Costs    *CostTable
	Resolve  SourceResolver
	// KnownCards pins observed cardinalities (progressive re-optimization).
	KnownCards map[*core.Operator]int64
	// Exhaustive disables the lossless pruning and enumerates every
	// combination of alternatives (ablation; exponential, small plans only).
	Exhaustive bool
	// Objective selects what the optimizer minimizes: ObjectiveRuntime
	// (default) or ObjectiveMonetary, which weights each platform's time by
	// its monetary rate.
	Objective Objective
	// DefaultLoopIterations is assumed for DoWhile loops without a bound.
	DefaultLoopIterations int
	// Metrics records enumeration time and plans considered; nil skips
	// instrumentation.
	Metrics *telemetry.Registry
	// Trace, when set, is the parent span the optimization annotates with
	// an "optimize" span (phases and per-alternative costs as children and
	// attributes); nil disables tracing.
	Trace *trace.Span
}

// Objective is the optimization goal.
type Objective int

// Optimization objectives.
const (
	// ObjectiveRuntime minimizes estimated wall-clock time.
	ObjectiveRuntime Objective = iota
	// ObjectiveMonetary minimizes estimated monetary cost (platform time
	// weighted by each platform's rate).
	ObjectiveMonetary
)

// weight returns the per-platform cost multiplier under the objective.
func (o Options) weight(platform string) float64 {
	if o.Objective == ObjectiveMonetary && o.Costs != nil {
		return o.Costs.Rate(platform)
	}
	return 1
}

func (o Options) withDefaults() Options {
	if o.Costs == nil && o.Registry != nil {
		o.Costs = DefaultCostTable(o.Registry.Mappings.Platforms())
	}
	if o.DefaultLoopIterations <= 0 {
		o.DefaultLoopIterations = 10
	}
	return o
}

// Optimize compiles a RheemPlan into an execution plan: it inflates the
// plan through the operator mappings, estimates cardinalities and costs,
// plans data movement over the channel conversion graph, and enumerates
// alternatives with lossless pruning, minimizing the estimated cost
// including platform start-up and movement costs.
func Optimize(p *core.Plan, opts Options) (*core.ExecPlan, error) {
	opts = opts.withDefaults()
	if opts.Registry == nil {
		return nil, fmt.Errorf("optimizer: no registry")
	}
	// Help text for the optimizer's metric families (the metrics-lint gate
	// requires every rheem_* family to carry one).
	opts.Metrics.Help("rheem_optimizer_optimizations_total", "Plans successfully optimized.")
	opts.Metrics.Help("rheem_optimizer_enumeration_seconds", "End-to-end optimization latency in seconds.")
	opts.Metrics.Help("rheem_optimizer_plans_considered_total", "Candidate platform assignments enumerated.")
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Registry.Mappings.Validate(p); err != nil {
		return nil, err
	}
	start := time.Now()
	sp := opts.Trace.Start(trace.KindOptimize, "optimize:"+p.Name)
	opts.Trace = sp // loop bodies and phase spans nest under this run
	ep, err := optimize(p, opts, nil, nil)
	if err == nil {
		opts.Metrics.Counter("rheem_optimizer_optimizations_total").Inc()
		opts.Metrics.Histogram("rheem_optimizer_enumeration_seconds", nil).Observe(time.Since(start).Seconds())
		sp.SetFloat("cost_low_ms", ep.Cost.LowMs)
		sp.SetFloat("cost_high_ms", ep.Cost.HighMs)
		sp.SetFloat("confidence", ep.Cost.Confidence)
	} else {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return ep, err
}

// optimize is the recursive worker; loopSeed pins the loop-input estimate
// when optimizing a loop body, and outerCards supplies estimates for
// OuterRef placeholders.
func optimize(p *core.Plan, opts Options, loopSeed *core.CardEstimate, outerCards map[*core.Operator]core.CardEstimate) (*core.ExecPlan, error) {
	inner := opts.Resolve
	resolve := func(op *core.Operator) (core.CardEstimate, bool) {
		if loopSeed != nil && op == p.LoopInput {
			return *loopSeed, true
		}
		if op.OuterRef != nil && outerCards != nil {
			if est, ok := outerCards[op.OuterRef]; ok {
				return est, true
			}
		}
		if inner != nil {
			return inner(op)
		}
		return core.CardEstimate{}, false
	}
	cardSp := opts.Trace.Start("estimate-cards", "estimate-cards")
	cards, err := EstimateCards(p, resolve, opts.KnownCards)
	cardSp.SetInt("operators", int64(len(cards)))
	cardSp.End()
	if err != nil {
		return nil, err
	}

	inflated, err := inflate(p, opts, cards)
	if err != nil {
		return nil, err
	}

	enumSp := opts.Trace.Start("enumerate", "enumerate")
	var choice map[*core.Operator]int
	var baseCost float64
	if opts.Exhaustive {
		enumSp.SetAttr("strategy", "exhaustive")
		choice, baseCost, err = enumerateExhaustive(p, opts, inflated, cards)
	} else {
		enumSp.SetAttr("strategy", "pruned")
		choice, baseCost, err = enumeratePruned(p, opts, inflated, cards)
	}
	if err == nil {
		enumSp.SetFloat("base_cost_ms", baseCost)
	}
	enumSp.End()
	if err != nil {
		return nil, err
	}

	ep := &core.ExecPlan{
		Plan:        p,
		Assignments: map[*core.Operator]*core.Assignment{},
		Movements:   map[*core.Operator]*core.MovementPlan{},
		LoopBodies:  map[*core.Operator]*core.ExecPlan{},
	}
	covered := map[*core.Operator]*core.Operator{} // covered op -> holder
	for op, entries := range inflated {
		idx, ok := choice[op]
		if !ok || op.Kind.IsLoop() {
			continue
		}
		ent := entries[idx]
		for _, c := range ent.chain[:max(0, len(ent.chain)-1)] {
			covered[c] = op
		}
		inCard := inputCard(op, ent, cards)
		ep.Assignments[op] = &core.Assignment{
			Alt:     ent.alt,
			OutCard: cards[op],
			CostEst: opts.Costs.AlternativeCost(ent.alt, inCard, cards[op]),
		}
		if opts.Trace != nil {
			// Per-alternative decision record: which implementation won and
			// at what estimated cost, directly on the optimize span.
			opts.Trace.SetAttr("alt."+op.String(),
				fmt.Sprintf("%s cost=%s card=%s", ent.alt.String(), ep.Assignments[op].CostEst, cards[op]))
		}
	}
	for c, holder := range covered {
		ep.Assignments[c] = &core.Assignment{OutCard: cards[c], CoveredBy: holder}
	}

	// Loop operators: optimize bodies recursively and attach.
	total := core.CostInterval{LowMs: baseCost, HighMs: baseCost * 1.3, Confidence: 0.8}
	for _, op := range p.Operators() {
		if !op.Kind.IsLoop() {
			continue
		}
		seed := core.ExactCard(0)
		if len(op.Inputs()) > 0 {
			seed = cards[op.Inputs()[0]]
		}
		bodyOpts := opts
		var bodySp *trace.Span
		if opts.Trace != nil {
			bodySp = opts.Trace.Start(trace.KindOptimize, "optimize-body:"+op.String())
			bodyOpts.Trace = bodySp
		}
		body, err := optimize(op.Body, bodyOpts, &seed, cards)
		bodySp.End()
		if err != nil {
			return nil, fmt.Errorf("optimizer: loop %s body: %w", op, err)
		}
		iters := op.Params.Iterations
		if iters <= 0 {
			iters = op.Params.MaxIterations
		}
		if iters <= 0 {
			iters = opts.DefaultLoopIterations
		}
		bodyCost := body.Cost.Scale(float64(iters))
		ep.LoopBodies[op] = body
		ep.Assignments[op] = &core.Assignment{
			Alt:     core.Alternative{Platform: "", Steps: nil},
			OutCard: cards[op],
			CostEst: bodyCost,
		}
		total = total.Add(bodyCost)
	}

	// Movement planning: one conversion tree per producer whose consumers
	// need channels other than the produced one.
	mvSp := opts.Trace.Start("plan-movement", "plan-movement")
	if err := planMovement(p, opts, ep, cards, covered); err != nil {
		mvSp.End()
		return nil, err
	}
	mvSp.SetInt("movements", int64(len(ep.Movements)))
	mvSp.End()
	for _, mv := range ep.Movements {
		total = total.Add(mv.CostEst)
	}
	ep.Cost = total
	return ep, nil
}

// entry is one enumeration unit: a (possibly fused) alternative and the
// logical chain it covers (tail = the op it is registered on; head first).
type entry struct {
	alt   core.Alternative
	chain []*core.Operator // nil or [head..tail]; tail == registered op
}

// head returns the operator whose inputs feed this entry.
func (e entry) head(op *core.Operator) *core.Operator {
	if len(e.chain) > 0 {
		return e.chain[0]
	}
	return op
}

// inflate computes the enumeration entries per operator: all direct
// alternatives plus fused chain alternatives registered at the chain tail.
func inflate(p *core.Plan, opts Options, cards map[*core.Operator]core.CardEstimate) (map[*core.Operator][]entry, error) {
	out := map[*core.Operator][]entry{}
	for _, op := range p.Operators() {
		if op.Kind.IsLoop() {
			continue
		}
		var entries []entry
		for _, a := range opts.Registry.Mappings.DirectAlternatives(op) {
			entries = append(entries, entry{alt: a})
		}
		out[op] = entries
	}
	// Chain alternatives attach at the tail operator.
	for _, op := range p.Operators() {
		for _, ca := range opts.Registry.Mappings.ChainAlternatives(op) {
			tail := ca.Chain[len(ca.Chain)-1]
			out[tail] = append(out[tail], entry{alt: ca.Alt, chain: ca.Chain})
		}
	}
	for _, op := range p.Operators() {
		if !op.Kind.IsLoop() && len(out[op]) == 0 {
			return nil, fmt.Errorf("optimizer: no implementation for %s", op)
		}
	}
	return out, nil
}

func inputCard(op *core.Operator, ent entry, cards map[*core.Operator]core.CardEstimate) core.CardEstimate {
	h := ent.head(op)
	ins := h.Inputs()
	if len(ins) == 0 {
		return cards[op] // sources: price by their output
	}
	agg := cards[ins[0]]
	for _, in := range ins[1:] {
		agg = agg.Add(cards[in])
	}
	return agg
}

// enumeratePruned is the lossless-pruning enumeration: dynamic programming
// over the plan DAG keeping, per operator, the cheapest partial cost per
// alternative (subplans sharing the same "ending execution operator" are
// pruned to the cheapest, which never discards part of an optimal plan).
// Platform start-up costs are handled exactly by running the DP once per
// subset of candidate platforms and charging each subset's start-up sum.
func enumeratePruned(p *core.Plan, opts Options, inflated map[*core.Operator][]entry, cards map[*core.Operator]core.CardEstimate) (map[*core.Operator]int, float64, error) {
	platforms := candidatePlatforms(inflated)
	if len(platforms) > 16 {
		return nil, 0, fmt.Errorf("optimizer: too many candidate platforms (%d)", len(platforms))
	}
	bestCost := math.Inf(1)
	var bestChoice map[*core.Operator]int
	for mask := 1; mask < 1<<len(platforms); mask++ {
		allowed := map[string]bool{}
		startup := 0.0
		for i, pf := range platforms {
			if mask&(1<<i) != 0 {
				allowed[pf] = true
				startup += opts.Registry.StartupCostMs(pf) * opts.weight(pf)
			}
		}
		// Each platform-subset DP pass evaluates one candidate plan shape.
		opts.Metrics.Counter("rheem_optimizer_plans_considered_total").Inc()
		choice, cost, ok := dpEnumerate(p, opts, inflated, cards, allowed)
		if !ok {
			continue
		}
		// Only charge start-up for platforms the chosen plan actually uses;
		// skip masks that include unused platforms (the exact-used subset is
		// also enumerated and cheaper or equal).
		used := usedPlatforms(inflated, choice)
		if len(used) != len(allowed) {
			continue
		}
		if total := cost + startup; total < bestCost {
			bestCost = total
			bestChoice = choice
		}
	}
	if bestChoice == nil {
		return nil, 0, fmt.Errorf("optimizer: no feasible platform assignment for plan %q", p.Name)
	}
	return bestChoice, bestCost, nil
}

func candidatePlatforms(inflated map[*core.Operator][]entry) []string {
	set := map[string]bool{}
	for _, entries := range inflated {
		for _, e := range entries {
			set[e.alt.Platform] = true
		}
	}
	out := make([]string, 0, len(set))
	for pf := range set {
		out = append(out, pf)
	}
	sort.Strings(out)
	return out
}

func usedPlatforms(inflated map[*core.Operator][]entry, choice map[*core.Operator]int) map[string]bool {
	used := map[string]bool{}
	for op, idx := range choice {
		used[inflated[op][idx].alt.Platform] = true
	}
	return used
}

// dpEnumerate runs the pruning DP restricted to the allowed platforms.
// Movement costs between producer and consumer alternatives use the
// cheapest conversion path for the producer's estimated cardinality.
func dpEnumerate(p *core.Plan, opts Options, inflated map[*core.Operator][]entry, cards map[*core.Operator]core.CardEstimate, allowed map[string]bool) (map[*core.Operator]int, float64, bool) {
	order, err := p.TopoOrder()
	if err != nil {
		return nil, 0, false
	}
	const inf = math.MaxFloat64 / 4
	// cost[op][i]: cheapest cost of computing op's output via entry i,
	// counting each producer's subtree once per consumer (exact on trees,
	// a safe overestimate on shared subplans; the executor reuses shared
	// channels at run time regardless).
	cost := map[*core.Operator][]float64{}
	pick := map[*core.Operator][]map[*core.Operator]int{} // per entry: chosen producer entries
	coveredBy := map[*core.Operator]bool{}                // ops consumed inside some chain

	for _, op := range order {
		if op.Kind.IsLoop() {
			continue
		}
		entries := inflated[op]
		cs := make([]float64, len(entries))
		ps := make([]map[*core.Operator]int, len(entries))
		for i, ent := range entries {
			if !allowed[ent.alt.Platform] {
				cs[i] = inf
				continue
			}
			own := opts.Costs.AlternativeCost(ent.alt, inputCard(op, ent, cards), cards[op]).Geomean() * opts.weight(ent.alt.Platform)
			// Pipeline fusion discount: a narrow op whose sole producer is a
			// narrow op on the same platform (no conversion between them)
			// rides the producer's fused chain, so its per-invocation fixed
			// overhead — per-op dispatch and intermediate materialization —
			// is not paid; only its per-tuple UDF cost remains. The discount
			// never exceeds own's fixed part, so totals stay non-negative.
			// Declarative reduce-by rides its producer's chain too: the
			// engines absorb it as the chain's vectorized aggregation tail.
			fuseDisc := 0.0
			fusible := core.FusibleKind(op.Kind) ||
				(op.Kind == core.KindReduceBy && op.UDF.ReduceExpr != nil)
			if !core.FusionDisabled() && fusible && core.InArityOf(op) == 1 {
				fuseDisc = opts.Costs.FusedStepOverheadMs(ent.alt) * opts.weight(ent.alt.Platform)
			}
			picks := map[*core.Operator]int{}
			total := own
			h := ent.head(op)
			feeds := append([]*core.Operator{}, h.Inputs()...)
			for _, bcProducer := range op.Broadcasts() {
				feeds = append(feeds, bcProducer)
			}
			for fi, producer := range feeds {
				if producer == nil {
					continue
				}
				if producer.Kind.IsLoop() {
					// Loop outputs surface as driver collections; their cost
					// is accounted separately via the optimized body.
					mv := moveCost(opts, "collection", ent.alt.InChannels(), cards[producer])
					if mv >= inf {
						total = inf
						break
					}
					total += mv
					continue
				}
				isBroadcast := fi >= len(h.Inputs())
				prodEntries := inflated[producer]
				bestIn := inf
				bestIdx := -1
				for pi, pe := range prodEntries {
					pc := cost[producer]
					if pc == nil || pc[pi] >= inf {
						continue
					}
					var mv float64
					if isBroadcast {
						mv = moveCost(opts, pe.alt.OutChannel(), []string{"collection"}, cards[producer])
					} else {
						mv = moveCost(opts, pe.alt.OutChannel(), ent.alt.InChannels(), cards[producer])
					}
					if mv >= inf {
						continue
					}
					disc := 0.0
					if fuseDisc > 0 && !isBroadcast && mv == 0 &&
						pe.alt.Platform == ent.alt.Platform &&
						core.FusibleKind(producer.Kind) && len(producer.Outputs()) == 1 {
						disc = fuseDisc
					}
					if c := pc[pi] + mv - disc; c < bestIn {
						bestIn = c
						bestIdx = pi
					}
				}
				if bestIdx < 0 {
					total = inf
					break
				}
				total += bestIn
				picks[producer] = bestIdx
			}
			cs[i] = total
			ps[i] = picks
		}
		cost[op] = cs
		pick[op] = ps
	}

	// Roots to realize: sinks plus the loop output (for bodies) plus inputs
	// of loop operators and the loop ops' consumers chain... loops are
	// excluded from DP; their input producers must be realized too.
	roots := rootsToRealize(p)
	choice := map[*core.Operator]int{}
	total := 0.0
	var realize func(op *core.Operator, idx int) bool
	realize = func(op *core.Operator, idx int) bool {
		if _, ok := choice[op]; ok {
			// A shared producer keeps its first decision; the DP priced its
			// subtree once per consumer, which can only overestimate, so the
			// pruning stays lossless with respect to plan selection.
			return true
		}
		choice[op] = idx
		ent := inflated[op][idx]
		for _, c := range ent.chain {
			if c != op {
				coveredBy[c] = true
			}
		}
		for producer, pi := range pick[op][idx] {
			if !realize(producer, pi) {
				return false
			}
		}
		return true
	}
	for _, root := range roots {
		entries := cost[root]
		if entries == nil {
			return nil, 0, false
		}
		best, bestIdx := inf, -1
		for i, c := range entries {
			if c < best {
				best, bestIdx = c, i
			}
		}
		if bestIdx < 0 || best >= inf {
			return nil, 0, false
		}
		total += best
		if !realize(root, bestIdx) {
			return nil, 0, false
		}
	}
	// Drop choices for operators covered by a selected fused chain.
	for op := range coveredBy {
		delete(choice, op)
	}
	return choice, total, true
}

// rootsToRealize returns the operators whose outputs must exist: sinks, the
// loop output of body plans, and the dataflow/broadcast inputs of loop
// operators.
func rootsToRealize(p *core.Plan) []*core.Operator {
	var roots []*core.Operator
	for _, op := range p.Operators() {
		if op.Kind.IsSink() && !op.Kind.IsLoop() {
			roots = append(roots, op)
		}
		if op.Kind.IsLoop() {
			roots = append(roots, op.Inputs()...)
			roots = append(roots, op.Broadcasts()...)
			// Outer operators the loop body references must be realized
			// before the loop starts.
			if op.Body != nil {
				for _, bodyOp := range op.Body.Operators() {
					if bodyOp.OuterRef != nil {
						roots = append(roots, bodyOp.OuterRef)
					}
				}
			}
		}
	}
	if p.LoopOutput != nil {
		roots = append(roots, p.LoopOutput)
	}
	// Broadcast producers of any operator must be realized as well (they
	// may be chosen as producers in pick already; this covers sink-less
	// broadcast-only branches).
	return roots
}

// moveCost is the cheapest conversion path cost from a produced channel to
// any acceptable input channel.
func moveCost(opts Options, from string, acceptable []string, card core.CardEstimate) float64 {
	if from == "" {
		return 0
	}
	best := math.MaxFloat64 / 4
	for _, to := range acceptable {
		if from == to {
			return 0
		}
		if path, err := opts.Registry.Graph.FindPath(from, to, card.Geomean()); err == nil && path.CostMs < best {
			best = path.CostMs
		}
	}
	return best
}

// planMovement computes, per producer whose consumers need other channels,
// the minimal conversion tree serving all consumer channel needs at once.
func planMovement(p *core.Plan, opts Options, ep *core.ExecPlan, cards map[*core.Operator]core.CardEstimate, covered map[*core.Operator]*core.Operator) error {
	for _, producer := range p.Operators() {
		a := ep.Assignments[producer]
		if a == nil || a.CoveredBy != nil {
			continue
		}
		from := a.Alt.OutChannel()
		if from == "" && !producer.Kind.IsLoop() {
			continue
		}
		if producer.Kind.IsLoop() {
			from = "collection" // loop outputs surface as driver collections
		}
		targets := map[string]bool{}
		for _, e := range p.Edges() {
			if e.From != producer {
				continue
			}
			consumer := e.To
			if holder, ok := covered[consumer]; ok {
				consumer = holder
			}
			if e.Broadcast {
				targets["collection"] = true
				continue
			}
			ca := ep.Assignments[consumer]
			if consumer.Kind.IsLoop() {
				targets["collection"] = true
				continue
			}
			if ca == nil || ca.CoveredBy != nil {
				continue
			}
			need := pickChannel(opts, from, ca.Alt.InChannels(), cards[producer])
			if need != "" && need != from {
				targets[need] = true
			}
		}
		if len(targets) == 0 {
			continue
		}
		var ts []string
		for t := range targets {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		tree, err := opts.Registry.Graph.FindTree(from, ts, cards[producer].Geomean())
		if err != nil {
			return fmt.Errorf("optimizer: movement from %s (%s): %w", producer, from, err)
		}
		lo := treeCost(tree, float64(cards[producer].Low))
		hi := treeCost(tree, float64(cards[producer].High))
		ep.Movements[producer] = &core.MovementPlan{
			Producer: producer,
			Tree:     tree,
			CostEst:  core.CostInterval{LowMs: lo, HighMs: hi, Confidence: cards[producer].Confidence},
		}
	}
	return nil
}

func treeCost(tree *core.ConversionTree, card float64) float64 {
	var total float64
	for _, e := range tree.Edges {
		total += e.CostMs(card)
	}
	return total
}

// pickChannel selects the acceptable consumer channel the producer can
// reach most cheaply.
func pickChannel(opts Options, from string, acceptable []string, card core.CardEstimate) string {
	best, bestCost := "", math.MaxFloat64
	for _, to := range acceptable {
		if to == from {
			return to
		}
		path, err := opts.Registry.Graph.FindPath(from, to, card.Geomean())
		if err != nil {
			continue
		}
		if path.CostMs < bestCost {
			best, bestCost = to, path.CostMs
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
