// Package optimizer implements RHEEM's cost-based cross-platform optimizer
// (Section 4.1 of the paper): plan inflation through the operator mappings,
// interval-based cardinality estimation with source sampling, a fully
// parameterized UDF-style cost model, data movement planning over the
// channel conversion graph, and plan enumeration with lossless pruning.
package optimizer

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"rheem/internal/core"
)

// OpCostParams are the learnable resource-usage parameters of one execution
// operator (cost key): the paper's r^m_o functions, affine in the input
// cardinality. Units are abstract resource units; the platform's unit costs
// convert them to milliseconds.
type OpCostParams struct {
	// CPUPerQuantum is the paper's (alpha + beta): CPU units consumed per
	// input quantum by the operator and its UDF.
	CPUPerQuantum float64 `json:"cpu_per_quantum"`
	// IOPerQuantum is disk I/O units per input quantum.
	IOPerQuantum float64 `json:"io_per_quantum"`
	// NetPerQuantum is network units per input quantum.
	NetPerQuantum float64 `json:"net_per_quantum"`
	// FixedOverhead is the paper's delta: start-up/scheduling units per
	// operator invocation.
	FixedOverhead float64 `json:"fixed_overhead"`
}

// PlatformUnitCosts convert resource units into milliseconds for one
// platform deployment (the configuration file of the paper: hardware
// characteristics such as number of nodes and CPU cores are folded in).
type PlatformUnitCosts struct {
	MsPerCPUUnit float64 `json:"ms_per_cpu_unit"`
	MsPerIOUnit  float64 `json:"ms_per_io_unit"`
	MsPerNetUnit float64 `json:"ms_per_net_unit"`
	MsPerFixed   float64 `json:"ms_per_fixed"`
	// StartupMs is the platform's fixed per-job startup charge used when the
	// driver does not expose a live one.
	StartupMs float64 `json:"startup_ms"`
	// UsdPerHour is the platform's monetary rate, used when optimizing for
	// monetary cost instead of runtime ("the cost can be any user-specified
	// cost, e.g., runtime or monetary cost").
	UsdPerHour float64 `json:"usd_per_hour"`
}

// CostTable is the complete cost model: per-operator parameters plus
// per-platform unit costs. It is what the cost learner fits and what the
// optimizer consumes; it serializes to JSON for offline learning.
type CostTable struct {
	Ops       map[string]OpCostParams      `json:"ops"`       // by cost key
	Platforms map[string]PlatformUnitCosts `json:"platforms"` // by platform name
}

// NewCostTable creates an empty table.
func NewCostTable() *CostTable {
	return &CostTable{Ops: map[string]OpCostParams{}, Platforms: map[string]PlatformUnitCosts{}}
}

// Rate returns the monetary weight of a platform (relative USD/hour; 1
// when unknown). The optimizer multiplies platform time by it under the
// monetary objective.
func (ct *CostTable) Rate(platform string) float64 {
	if u, ok := ct.Platforms[platform]; ok && u.UsdPerHour > 0 {
		return u.UsdPerHour
	}
	return 1
}

// OpTimeMs evaluates an execution operator's time for a scalar input
// cardinality.
func (ct *CostTable) OpTimeMs(costKey, platform string, cin float64) float64 {
	p, ok := ct.Ops[costKey]
	if !ok {
		p = defaultParamsFor(costKey)
	}
	u, ok := ct.Platforms[platform]
	if !ok {
		u = PlatformUnitCosts{MsPerCPUUnit: 1, MsPerIOUnit: 1, MsPerNetUnit: 1, MsPerFixed: 1}
	}
	return p.CPUPerQuantum*cin*u.MsPerCPUUnit +
		p.IOPerQuantum*cin*u.MsPerIOUnit +
		p.NetPerQuantum*cin*u.MsPerNetUnit +
		p.FixedOverhead*u.MsPerFixed
}

// AlternativeCost prices a full alternative (all its execution operator
// steps) for the operator's input and output cardinality intervals. The
// resource functions are affine in (input + output) quanta: pricing the
// output too is what makes expansion-heavy operators (joins, flatmaps)
// costed by the data they produce, not only the data they read.
func (ct *CostTable) AlternativeCost(alt core.Alternative, in, out core.CardEstimate) core.CostInterval {
	lo, hi := 0.0, 0.0
	for _, step := range alt.Steps {
		lo += ct.OpTimeMs(step.CostKeyOrName(), alt.Platform, float64(in.Low)+float64(out.Low))
		hi += ct.OpTimeMs(step.CostKeyOrName(), alt.Platform, float64(in.High)+float64(out.High))
	}
	conf := in.Confidence
	if out.Confidence > 0 && out.Confidence < conf {
		conf = out.Confidence
	}
	if conf <= 0 {
		conf = 0.1
	}
	return core.CostInterval{LowMs: lo, HighMs: hi, Confidence: conf}
}

// FusedStepOverheadMs returns the per-invocation fixed overhead (in
// milliseconds) of an alternative's steps: the part of its cost that
// pipeline fusion eliminates. When two adjacent narrow operators fuse into
// one single-pass kernel, the downstream operator's per-op dispatch and
// intermediate materialization vanish — its per-tuple UDF cost remains.
func (ct *CostTable) FusedStepOverheadMs(alt core.Alternative) float64 {
	u, ok := ct.Platforms[alt.Platform]
	if !ok {
		u = PlatformUnitCosts{MsPerCPUUnit: 1, MsPerIOUnit: 1, MsPerNetUnit: 1, MsPerFixed: 1}
	}
	total := 0.0
	for _, step := range alt.Steps {
		p, ok := ct.Ops[step.CostKeyOrName()]
		if !ok {
			p = defaultParamsFor(step.CostKeyOrName())
		}
		total += p.FixedOverhead * u.MsPerFixed
	}
	return total
}

// Save writes the table as JSON.
func (ct *CostTable) Save(path string) error {
	raw, err := json.MarshalIndent(ct, "", "  ")
	if err != nil {
		return fmt.Errorf("optimizer: marshal cost table: %w", err)
	}
	return os.WriteFile(path, raw, 0o644)
}

// LoadCostTable reads a JSON cost table.
func LoadCostTable(path string) (*CostTable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("optimizer: read cost table: %w", err)
	}
	ct := NewCostTable()
	if err := json.Unmarshal(raw, ct); err != nil {
		return nil, fmt.Errorf("optimizer: parse cost table: %w", err)
	}
	return ct, nil
}

// Clone deep-copies the table (the learner mutates copies).
func (ct *CostTable) Clone() *CostTable {
	out := NewCostTable()
	for k, v := range ct.Ops {
		out.Ops[k] = v
	}
	for k, v := range ct.Platforms {
		out.Platforms[k] = v
	}
	return out
}

// DefaultCostTable builds a calibrated-by-construction cost model for the
// in-process engines. The shape (who is cheap at what) encodes the platform
// archetypes; the cost learner refines the numbers from execution logs.
func DefaultCostTable(platforms []string) *CostTable {
	ct := NewCostTable()
	for _, p := range platforms {
		switch p {
		case "streams":
			// Single-threaded: highest per-quantum CPU, zero startup, runs on
			// the (already-paid) driver machine.
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 1, MsPerIOUnit: 1, MsPerNetUnit: 1, MsPerFixed: 1, StartupMs: 0, UsdPerHour: 0.5}
		case "spark":
			// Parallel scans: low per-quantum cost, big startup.
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 0.22, MsPerIOUnit: 0.35, MsPerNetUnit: 1.2, MsPerFixed: 6, StartupMs: 162, UsdPerHour: 12}
		case "flink":
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 0.38, MsPerIOUnit: 0.35, MsPerNetUnit: 1.1, MsPerFixed: 3, StartupMs: 86, UsdPerHour: 10}
		case "relstore":
			// Single node with limited workers; indexes make filters cheap.
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 0.5, MsPerIOUnit: 0.6, MsPerNetUnit: 1.5, MsPerFixed: 1, StartupMs: 1.5, UsdPerHour: 2}
		case "pregel":
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 0.3, MsPerIOUnit: 0.4, MsPerNetUnit: 1.0, MsPerFixed: 3, StartupMs: 60, UsdPerHour: 8}
		case "graphmem":
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 0.8, MsPerIOUnit: 1, MsPerNetUnit: 1, MsPerFixed: 1, StartupMs: 0, UsdPerHour: 0.5}
		default:
			ct.Platforms[p] = PlatformUnitCosts{MsPerCPUUnit: 1, MsPerIOUnit: 1, MsPerNetUnit: 1, MsPerFixed: 1}
		}
	}
	return ct
}

// defaultParamsFor derives operator parameters from the cost key's suffix
// when no learned parameters exist. Keys follow "<platform>.<opname>".
func defaultParamsFor(costKey string) OpCostParams {
	name := costKey
	if i := strings.IndexByte(costKey, '.'); i >= 0 {
		name = costKey[i+1:]
	}
	switch {
	case strings.Contains(name, "source") || strings.Contains(name, "scan"):
		return OpCostParams{CPUPerQuantum: 0.0002, IOPerQuantum: 0.0006, FixedOverhead: 1}
	case strings.Contains(name, "sink") || strings.Contains(name, "fetch"):
		return OpCostParams{CPUPerQuantum: 0.0002, IOPerQuantum: 0.0004, FixedOverhead: 0.5}
	case strings.Contains(name, "iejoin"):
		// Sort-based: dominated by the n log n sort, modelled as a higher
		// per-quantum factor.
		return OpCostParams{CPUPerQuantum: 0.004, FixedOverhead: 1}
	case strings.Contains(name, "join"):
		return OpCostParams{CPUPerQuantum: 0.0018, NetPerQuantum: 0.0004, FixedOverhead: 1}
	case strings.Contains(name, "cartesian"):
		return OpCostParams{CPUPerQuantum: 0.01, FixedOverhead: 1}
	case strings.Contains(name, "reduce-by"), strings.Contains(name, "group"), strings.Contains(name, "agg"), strings.Contains(name, "distinct"):
		return OpCostParams{CPUPerQuantum: 0.0014, NetPerQuantum: 0.0003, FixedOverhead: 1}
	case strings.Contains(name, "sort"):
		return OpCostParams{CPUPerQuantum: 0.002, FixedOverhead: 1}
	case strings.Contains(name, "pagerank"):
		return OpCostParams{CPUPerQuantum: 0.004, NetPerQuantum: 0.001, FixedOverhead: 2}
	case strings.Contains(name, "sample"):
		return OpCostParams{CPUPerQuantum: 0.0004, FixedOverhead: 0.5}
	case strings.Contains(name, "filter"):
		return OpCostParams{CPUPerQuantum: 0.0004, FixedOverhead: 0.2}
	case strings.Contains(name, "flatmap"):
		return OpCostParams{CPUPerQuantum: 0.0012, FixedOverhead: 0.2}
	case strings.Contains(name, "count"):
		return OpCostParams{CPUPerQuantum: 0.0001, FixedOverhead: 0.2}
	case strings.Contains(name, "cache"):
		return OpCostParams{CPUPerQuantum: 0.0003, FixedOverhead: 0.3}
	default: // map and friends
		return OpCostParams{CPUPerQuantum: 0.0006, FixedOverhead: 0.2}
	}
}
