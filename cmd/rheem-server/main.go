// Command rheem-server serves the REST interface (Section 5 of the paper):
// clients POST RheemLatin scripts to /v1/run or /v1/explain and get JSON
// back. The server ships the same demonstration UDF library as the rheem
// CLI; embedders construct restapi.Server with their own registry.
//
//	rheem-server -addr :8080
//	curl -X POST localhost:8080/v1/run -d '{"script": "..."}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"rheem"
	"rheem/internal/core"
	"rheem/latin"
	"rheem/restapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fast := flag.Bool("fast", false, "disable the simulated cluster latencies")
	costs := flag.String("costs", "", "path to a learned cost table (JSON)")
	dfsDir := flag.String("dfs", "", "DFS root directory (default: temporary)")
	flag.Parse()

	ctx, err := rheem.NewContext(rheem.Config{
		FastSimulation: *fast,
		CostTablePath:  *costs,
		DFSDir:         *dfsDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rheem-server:", err)
		os.Exit(1)
	}
	srv := restapi.New(ctx, serverUDFs())
	log.Printf("rheem-server listening on %s (platforms: %v)", *addr, ctx.Registry.Mappings.Platforms())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

// serverUDFs is the demonstration UDF library (shared shape with cmd/rheem).
func serverUDFs() *latin.Registry {
	reg := latin.NewRegistry()
	reg.RegisterFlatMap("splitWords", func(q any) []any {
		fields := strings.Fields(q.(string))
		out := make([]any, len(fields))
		for i, w := range fields {
			out[i] = core.KV{Key: w, Value: int64(1)}
		}
		return out
	})
	reg.RegisterKey("wordOf", func(q any) any { return q.(core.KV).Key })
	reg.RegisterReduce("sumCounts", func(a, b any) any {
		ka, kb := a.(core.KV), b.(core.KV)
		return core.KV{Key: ka.Key, Value: ka.Value.(int64) + kb.Value.(int64)}
	})
	reg.RegisterMap("parseFloat", func(q any) any {
		f, _ := strconv.ParseFloat(strings.TrimSpace(q.(string)), 64)
		return f
	})
	reg.RegisterReduce("sum", func(a, b any) any { return a.(float64) + b.(float64) })
	return reg
}
