// Command rheem-server serves the REST interface (Section 5 of the paper):
// clients POST RheemLatin scripts to /v1/run for synchronous execution, or
// to /v1/jobs for asynchronous execution with admission control, polling
// /v1/jobs/{id} for status and /v1/jobs/{id}/result for the sinks.
// /v1/metrics exposes system-wide telemetry in Prometheus text format.
// The server ships the same demonstration UDF library as the rheem CLI;
// embedders construct restapi.Server with their own registry.
//
//	rheem-server -addr :8080 -workers 4 -queue 64
//	curl -X POST localhost:8080/v1/jobs -d '{"script": "..."}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rheem"
	"rheem/internal/cluster"
	"rheem/internal/core"
	"rheem/internal/jobs"
	"rheem/internal/rescache"
	"rheem/internal/storage/dfs"
	"rheem/internal/telemetry"
	"rheem/internal/xlog"
	"rheem/latin"
	"rheem/restapi"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	fast := flag.Bool("fast", false, "disable the simulated cluster latencies")
	costs := flag.String("costs", "", "path to a learned cost table (JSON)")
	dfsDir := flag.String("dfs", "", "DFS root directory (default: temporary)")
	queue := flag.Int("queue", 64, "admission queue depth; further submissions get 429")
	workers := flag.Int("workers", 4, "concurrent job executions")
	resultTTL := flag.Duration("result-ttl", 10*time.Minute, "how long finished job results are retained")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body size in bytes")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	traceCap := flag.Int("trace-capacity", 256, "per-job execution traces retained (LRU)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "result-cache capacity in estimated bytes; 0 disables cross-job result caching")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Minute, "result-cache entry lifetime; 0 keeps entries until evicted")
	cacheSpillBytes := flag.Int64("cache-spill-bytes", 0, "disk tier capacity for capacity-evicted cache entries; 0 disables spilling")
	cacheSpillDir := flag.String("cache-spill-dir", "", "spill store directory, re-indexed across restarts (default: temporary)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	peers := flag.String("peers", "", "comma-separated advertise addresses of the other fleet peers (requires -advertise)")
	advertise := flag.String("advertise", "", "host:port other peers reach this server at; empty runs single-node")
	clusterRoute := flag.Bool("cluster-route", false, "proxy job submissions to their plan fingerprint's ring owner")
	clusterExec := flag.Bool("cluster-exec", false, "distribute independent stages of each wave across alive fleet peers")
	clusterExecMinCost := flag.Float64("cluster-exec-min-cost-ms", 0,
		"keep stages whose estimated cost is below this floor local instead of dispatching them")
	heartbeat := flag.Duration("heartbeat", time.Second, "cluster heartbeat (gossip) interval")
	scrapeTimeout := flag.Duration("cluster-scrape-timeout", 2*time.Second,
		"per-peer timeout for fleet aggregation scrapes and trace stitching (/v1/cluster/metrics, /v1/cluster/overview)")
	flag.Parse()

	if *peers != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "rheem-server: -peers requires -advertise")
		return 2
	}
	if *clusterExec && *advertise == "" {
		fmt.Fprintln(os.Stderr, "rheem-server: -cluster-exec requires -advertise")
		return 2
	}

	level, err := xlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rheem-server:", err)
		return 2
	}
	logger := xlog.New(os.Stderr, level).With("component", "server")

	metrics := telemetry.NewRegistry()
	var cache *rescache.Cache
	if *cacheBytes > 0 {
		// The spill store is a dedicated single-node, single-replica DFS:
		// spilled entries are a cache, not durable data, so replication
		// would only multiply the disk footprint.
		var spillStore *dfs.Store
		if *cacheSpillBytes > 0 {
			spillOpts := dfs.Options{Replication: 1, Nodes: 1}
			if *cacheSpillDir != "" {
				// Fleet peers sharing one parent directory get disjoint
				// per-peer namespaces; whatever directory results is then
				// exclusively flocked, so two processes pointed at the very
				// same spill store refuse to start rather than silently
				// corrupt each other's rescache-spill/<fp> files.
				spillDir := *cacheSpillDir
				if *advertise != "" {
					spillDir = filepath.Join(spillDir, rescache.SpillNamespace(*advertise))
				}
				unlock, err := rescache.LockSpillDir(spillDir)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rheem-server:", err)
					return 2
				}
				defer unlock()
				spillStore, err = dfs.New(spillDir, spillOpts)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rheem-server: cache spill store:", err)
					return 2
				}
			} else {
				spillStore, err = dfs.NewTemp(spillOpts)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rheem-server: cache spill store:", err)
					return 2
				}
			}
		}
		cache = rescache.New(rescache.Options{
			MaxBytes:      *cacheBytes,
			TTL:           *cacheTTL,
			SpillStore:    spillStore,
			SpillMaxBytes: *cacheSpillBytes,
			Metrics:       metrics,
		})
	}
	ctx, err := rheem.NewContext(rheem.Config{
		FastSimulation: *fast,
		CostTablePath:  *costs,
		DFSDir:         *dfsDir,
		Metrics:        metrics,
		ResultCache:    cache,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		return 1
	}
	// Cluster membership: -advertise turns this process into a fleet peer.
	// The node heartbeats its peers, gossips cache invalidations, and backs
	// the result cache's remote tier over the rendezvous ring.
	var node *cluster.Node
	if *advertise != "" {
		node, err = cluster.New(cluster.Options{
			Advertise:         *advertise,
			Peers:             splitPeers(*peers),
			HeartbeatInterval: *heartbeat,
			Cache:             cache,
			Metrics:           metrics,
			Log:               xlog.New(os.Stderr, level).With("component", "cluster"),
		})
		if err != nil {
			logger.Error("cluster startup failed", "error", err)
			return 1
		}
		if cache != nil {
			cache.SetRemote(node)
		}
		node.Start()
		defer node.Stop()
	}
	srv := restapi.NewWithOptions(ctx, serverUDFs(), restapi.Options{
		Jobs: jobs.Options{
			QueueDepth: *queue,
			Workers:    *workers,
			ResultTTL:  *resultTTL,
		},
		MaxBodyBytes:         *maxBody,
		TraceCapacity:        *traceCap,
		Log:                  xlog.New(os.Stderr, level),
		Cluster:              node,
		ClusterRoute:         *clusterRoute,
		ClusterExec:          *clusterExec,
		ClusterExecMinCostMs: *clusterExecMinCost,
		ScrapeTimeout:        *scrapeTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	sampler := telemetry.StartRuntimeSampler(ctx.Metrics, 0)

	// pprof gets its own mux on its own listener: profiling endpoints are
	// operator-only and must never ride on the public API address.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof server stopped", "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	// Serve until SIGINT/SIGTERM, then drain: stop admitting new work,
	// finish in-flight requests and jobs, and report anything abandoned.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr,
		"platforms", fmt.Sprintf("%v", ctx.Registry.Mappings.Platforms()),
		"workers", *workers, "queue", *queue, "level", level,
		"cache_bytes", *cacheBytes, "cache_ttl", *cacheTTL,
		"cache_spill_bytes", *cacheSpillBytes)
	if node != nil {
		logger.Info("cluster joined", "advertise", *advertise,
			"peers", *peers, "route", *clusterRoute, "exec", *clusterExec, "heartbeat", *heartbeat)
	}

	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err)
		return 1
	case <-sigCtx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately
	logger.Info("shutting down", "drain_timeout", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if pprofSrv != nil {
		_ = pprofSrv.Shutdown(drainCtx)
	}
	closeErr := srv.Close(drainCtx)
	sampler.Stop()
	if closeErr != nil {
		logger.Error("drain incomplete", "error", closeErr)
		if errors.Is(closeErr, jobs.ErrClosed) {
			return 0
		}
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}

// splitPeers parses the -peers list, dropping empty elements.
func splitPeers(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serverUDFs is the demonstration UDF library (shared shape with cmd/rheem).
func serverUDFs() *latin.Registry {
	reg := latin.NewRegistry()
	reg.RegisterFlatMap("splitWords", func(q any) []any {
		fields := strings.Fields(q.(string))
		out := make([]any, len(fields))
		for i, w := range fields {
			out[i] = core.KV{Key: w, Value: int64(1)}
		}
		return out
	})
	reg.RegisterKey("wordOf", func(q any) any { return q.(core.KV).Key })
	reg.RegisterReduce("sumCounts", func(a, b any) any {
		ka, kb := a.(core.KV), b.(core.KV)
		return core.KV{Key: ka.Key, Value: ka.Value.(int64) + kb.Value.(int64)}
	})
	reg.RegisterMap("parseFloat", func(q any) any {
		f, _ := strconv.ParseFloat(strings.TrimSpace(q.(string)), 64)
		return f
	})
	reg.RegisterReduce("sum", func(a, b any) any { return a.(float64) + b.(float64) })
	return reg
}
