// Command rheem-learn is the offline cost-model learner (Section 4.5 of the
// paper): it generates execution logs over the three task topologies
// (pipeline, iterative, merge) on every general-purpose platform, fits the
// cost model parameters with the genetic algorithm, and writes the learned
// cost table for later runs (rheem --costs table.json).
//
// Usage:
//
//	rheem-learn -out costs.json                 # generate logs + learn
//	rheem-learn -logs logs.jsonl -out costs.json  # learn from existing logs
//	rheem-learn -gen-only -logs logs.jsonl        # only generate logs
package main

import (
	"flag"
	"fmt"
	"os"

	"rheem"
	"rheem/internal/costlearn"
	"rheem/internal/optimizer"
)

func main() {
	out := flag.String("out", "costs.json", "output path for the learned cost table")
	logPath := flag.String("logs", "", "JSONL stage-log file (read if it exists, else written)")
	genOnly := flag.Bool("gen-only", false, "only generate and store logs; skip learning")
	sizes := flag.String("sizes", "1000,10000,50000", "comma-separated input sizes for log generation")
	pop := flag.Int("population", 80, "genetic algorithm population size")
	gens := flag.Int("generations", 200, "genetic algorithm generations")
	seed := flag.Int64("seed", 1, "genetic algorithm seed")
	flag.Parse()

	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		fatal(err)
	}

	var logs []costlearn.StageLog
	if *logPath != "" {
		if existing, err := costlearn.LoadLogs(*logPath); err == nil && len(existing) > 0 {
			logs = existing
			fmt.Printf("loaded %d stage logs from %s\n", len(logs), *logPath)
		}
	}
	if len(logs) == 0 {
		fmt.Println("generating execution logs (pipeline, iterative, merge topologies)...")
		logs, err = costlearn.GenerateLogs(ctx.Registry, costlearn.GenOptions{Sizes: parseSizes(*sizes)})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generated %d stage logs\n", len(logs))
		if *logPath != "" {
			if err := costlearn.AppendLogs(*logPath, logs); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote logs to %s\n", *logPath)
		}
	}
	if *genOnly {
		return
	}

	base := optimizer.DefaultCostTable(ctx.Registry.Mappings.Platforms())
	fmt.Printf("fitting %d-gene model (population %d, %d generations)...\n", countKeys(logs)*2, *pop, *gens)
	learned, loss, err := costlearn.Learn(logs, base, costlearn.Options{
		Population: *pop, Generations: *gens, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := learned.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("training loss %.4f; learned cost table written to %s\n", loss, *out)
}

func parseSizes(s string) []int {
	var out []int
	n := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if n > 0 {
				out = append(out, n)
			}
			n = 0
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			n = n*10 + int(s[i]-'0')
		}
	}
	return out
}

func countKeys(logs []costlearn.StageLog) int {
	keys := map[string]bool{}
	for _, l := range logs {
		for _, op := range l.Ops {
			keys[op.CostKey] = true
		}
	}
	return len(keys)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rheem-learn:", err)
	os.Exit(1)
}
