// Command rheem runs RheemLatin scripts on the cross-platform system: it
// compiles the script against the registered UDF library, optimizes it over
// all bundled platforms, and executes it — or, with --explain, prints the
// plan and the chosen execution plan without running.
//
// Usage:
//
//	rheem [flags] script.latin
//	rheem --demo              # run the built-in SGD demo script
//
// UDFs are Go functions; the CLI ships a demonstration library (word
// splitting, numeric parsing, SGD operators) registered under the names the
// bundled scripts use. Applications embed the latin package directly to
// register their own.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rheem"
	"rheem/internal/core"
	"rheem/internal/trace"
	"rheem/latin"
)

func main() {
	explain := flag.Bool("explain", false, "print the plan and chosen execution plan; do not run")
	demo := flag.Bool("demo", false, "run the built-in SGD demo script")
	fast := flag.Bool("fast", false, "disable the simulated cluster latencies")
	costs := flag.String("costs", "", "path to a learned cost table (JSON)")
	dfsDir := flag.String("dfs", "", "DFS root directory (default: temporary)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (open in chrome://tracing or Perfetto)")
	flag.Parse()

	src := ""
	switch {
	case *demo:
		src = demoScript
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(raw)
	default:
		fmt.Fprintln(os.Stderr, "usage: rheem [--explain] [--fast] [--costs table.json] script.latin | rheem --demo")
		os.Exit(2)
	}

	ctx, err := rheem.NewContext(rheem.Config{
		FastSimulation: *fast,
		CostTablePath:  *costs,
		DFSDir:         *dfsDir,
	})
	if err != nil {
		fatal(err)
	}
	udfs := demoUDFs(ctx)
	compiled, err := latin.Compile(src, udfs)
	if err != nil {
		fatal(err)
	}

	if *explain {
		out, err := ctx.Explain(compiled.Plan)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var tr *trace.Tracer
	execCtx := context.Background()
	if *traceOut != "" {
		tr = trace.New(trace.KindJob, "job:"+compiled.Plan.Name)
		tr.Metrics = ctx.Metrics
		execCtx = trace.NewContext(execCtx, tr.Root())
	}
	res, err := ctx.ExecuteCtx(execCtx, compiled.Plan)
	if tr != nil {
		root := tr.Root()
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		root.End()
		if werr := writeChromeTrace(*traceOut, tr); werr != nil {
			fmt.Fprintln(os.Stderr, "rheem: writing trace:", werr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	fmt.Printf("executed on platforms: %v (replans: %d)\n", res.Platforms(), res.Replans())
	for name, sink := range compiled.Sinks {
		data, err := res.CollectFrom(sink)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d quanta\n", name, len(data))
		for i, q := range data {
			if i >= 10 {
				fmt.Printf("  ... (%d more)\n", len(data)-10)
				break
			}
			fmt.Printf("  %v\n", q)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rheem:", err)
	os.Exit(1)
}

func writeChromeTrace(path string, tr *trace.Tracer) error {
	data, err := json.MarshalIndent(tr.ChromeTrace(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// demoScript is Listing 1 of the paper, adapted to the Go UDF registry.
const demoScript = `
points = load collection points;
cached = cache points;
weights = load collection initialWeights;
weights = repeat 30 over weights {
	sampled = sample cached 20 method 'shuffle-first' seed 7;
	gradient = map sampled using computeGradient with broadcast weights;
	gsum = reduce gradient using sumGradients;
	weights = map gsum using updateWeights with broadcast weights;
};
collect weights;
`

// demoUDFs registers the demonstration UDF library.
func demoUDFs(ctx *rheem.Context) *latin.Registry {
	reg := latin.NewRegistry()

	// Text.
	reg.RegisterFlatMap("splitWords", func(q any) []any {
		fields := strings.Fields(q.(string))
		out := make([]any, len(fields))
		for i, w := range fields {
			out[i] = core.KV{Key: w, Value: int64(1)}
		}
		return out
	})
	reg.RegisterKey("wordOf", func(q any) any { return q.(core.KV).Key })
	reg.RegisterReduce("sumCounts", func(a, b any) any {
		ka, kb := a.(core.KV), b.(core.KV)
		return core.KV{Key: ka.Key, Value: ka.Value.(int64) + kb.Value.(int64)}
	})

	// Numbers.
	reg.RegisterMap("parseFloat", func(q any) any {
		f, _ := strconv.ParseFloat(strings.TrimSpace(q.(string)), 64)
		return f
	})
	reg.RegisterReduce("sum", func(a, b any) any { return a.(float64) + b.(float64) })

	// SGD demo: a 1-D mean-seeking gradient.
	var w float64
	readW := func(bc core.BroadcastCtx) {
		ws := bc.Get("weights")
		if len(ws) == 1 {
			w = ws[0].(float64)
		}
	}
	reg.RegisterMapCtx("computeGradient", readW, func(q any) any { return w - q.(float64) })
	reg.RegisterReduce("sumGradients", func(a, b any) any { return a.(float64) + b.(float64) })
	reg.RegisterMapCtx("updateWeights", readW, func(q any) any { return w - 0.05*q.(float64)/20 })

	points := make([]any, 500)
	for i := range points {
		points[i] = float64(i%17) - 8
	}
	reg.RegisterCollection("points", points)
	reg.RegisterCollection("initialWeights", []any{10.0})
	return reg
}
