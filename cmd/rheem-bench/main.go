// Command rheem-bench regenerates the paper's evaluation: every figure of
// Sections 2 and 6 plus Table 1 and the design-choice ablations, printed as
// aligned text tables (system, configuration, measured runtime).
//
// Usage:
//
//	rheem-bench                 # run everything (several minutes)
//	rheem-bench -experiment fig2a,fig9b
//	rheem-bench -scale 0.25     # shrink inputs for a quick pass
//	rheem-bench -json out.json  # also emit machine-readable rows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"rheem/internal/experiments"
)

// jsonRow is the machine-readable form of one measurement, written by -json.
// Keeping a flat schema (one object per row) makes the output trivially
// diffable against a recorded baseline such as BENCH_seed.json.
type jsonRow struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	System     string `json:"system"`
	// RuntimeMs is null for rows with no runtime (qualitative rows such as
	// the learned-cost choice comparison, which the text table renders as X).
	RuntimeMs *float64 `json:"runtime_ms"`
	Note      string   `json:"note,omitempty"`
}

type experiment struct {
	name string
	desc string
	run  func(experiments.Options) ([]experiments.Row, error)
}

var all = []experiment{
	{"fig2a", "platform independence: data cleaning (DC@Rheem vs NADEEF vs SparkSQL)", experiments.Fig2a},
	{"fig2b", "opportunistic: SGD (ML@Rheem vs MLlib vs SystemML)", experiments.Fig2b},
	{"fig2c", "mandatory: cross-community PageRank out of the store vs ideal", experiments.Fig2c},
	{"fig2d", "polystore: TPC-H Q5 in place vs consolidate-first", experiments.Fig2d},
	{"fig9a", "platform independence sweep: WordCount", experiments.Fig9a},
	{"fig9b", "platform independence sweep: SGD", experiments.Fig9b},
	{"fig9c", "platform independence sweep: CrocoPR", experiments.Fig9c},
	{"fig9d", "opportunistic sweep: WordCount result fraction", experiments.Fig9d},
	{"fig9e", "opportunistic sweep: SGD batch size", experiments.Fig9e},
	{"fig9f", "opportunistic sweep: CrocoPR iterations", experiments.Fig9f},
	{"fig10a", "hidden opportunity: the Join subquery", experiments.Fig10a},
	{"fig10b", "progressive optimization on/off", experiments.Fig10b},
	{"fig10c", "exploratory mode on/off", experiments.Fig10c},
	{"fig11", "Rheem vs Musketeer: CrocoPR", experiments.Fig11},
	{"codec", "wire format: tagged JSON vs binary quantum codec", experiments.Codec},
	{"fusion", "narrow-chain pipelines: fused vs per-operator execution", experiments.Fusion},
	{"columnar", "columnar data plane: vectorized column kernels vs fused row path", experiments.Columnar},
	{"distexec", "distributed stage execution: local vs loopback-peer dispatch", experiments.Distexec},
	{"abl-prune", "ablation: lossless pruning vs exhaustive enumeration", experiments.AblationPruning},
	{"abl-move", "ablation: conversion tree vs naive per-path movement", experiments.AblationMovement},
	{"abl-learn", "ablation: learned vs default cost model", experiments.AblationLearnedCosts},
}

func main() {
	which := flag.String("experiment", "", "comma-separated experiment ids (default: all); see -list")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("scale", 1, "input size multiplier")
	seed := flag.Int64("seed", 0, "data generation seed (0 = default)")
	jsonOut := flag.String("json", "", "also write results as a JSON array to this file")
	flag.Parse()

	if *list {
		for _, e := range all {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		fmt.Printf("%-10s %s\n", "table1", "Table 1: tasks and datasets")
		return
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	selected := map[string]bool{}
	for _, n := range strings.Split(*which, ",") {
		if n = strings.TrimSpace(n); n != "" {
			selected[n] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	if want("table1") {
		t1, err := experiments.Table1(opts)
		if err != nil {
			fatal("table1", err)
		}
		fmt.Println(t1)
	}
	var collected []jsonRow
	for _, e := range all {
		if !want(e.name) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		rows, err := e.run(opts)
		if err != nil {
			fatal(e.name, err)
		}
		fmt.Println(experiments.RenderTable(rows))
		for _, r := range rows {
			row := jsonRow{Experiment: e.name, Config: r.Config, System: r.System, Note: r.Note}
			if !math.IsNaN(r.Ms) && !math.IsInf(r.Ms, 0) && r.Ms >= 0 {
				ms := r.Ms
				row.RuntimeMs = &ms
			}
			collected = append(collected, row)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			fatal("json", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal("json", err)
		}
		fmt.Fprintf(os.Stderr, "rheem-bench: wrote %d rows to %s\n", len(collected), *jsonOut)
	}
}

func fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "rheem-bench: %s: %v\n", name, err)
	os.Exit(1)
}
