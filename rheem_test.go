package rheem

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"rheem/internal/core"
	"rheem/internal/platform/relstore"
)

func fastCtx(t *testing.T) *Context {
	t.Helper()
	ctx, err := NewContext(Config{FastSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestQuickstartWordCount(t *testing.T) {
	ctx := fastCtx(t)
	if err := ctx.DFS.WriteLines("words.txt", []string{"may the force", "be with the force"}); err != nil {
		t.Fatal(err)
	}
	out, err := ctx.NewPlan("wordcount").
		ReadTextFile("dfs://words.txt").
		FlatMap("split", func(q any) []any {
			var out []any
			for _, w := range strings.Fields(q.(string)) {
				out = append(out, core.KV{Key: w, Value: int64(1)})
			}
			return out
		}).
		ReduceBy("count",
			func(q any) any { return q.(core.KV).Key },
			func(a, b any) any {
				return core.KV{Key: a.(core.KV).Key, Value: a.(core.KV).Value.(int64) + b.(core.KV).Value.(int64)}
			}).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, q := range out {
		kv := q.(core.KV)
		counts[kv.Key.(string)] = kv.Value.(int64)
	}
	want := map[string]int64{"may": 1, "the": 2, "force": 2, "be": 1, "with": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v", counts)
	}
}

func TestBuilderBinaryOps(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("binary")
	left := b.LoadCollection("l", []any{int64(1), int64(2), int64(3)})
	right := b.LoadCollection("r", []any{int64(2), int64(3), int64(4)})
	out, err := left.Intersect(right).Sort(nil).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []any{int64(2), int64(3)}) {
		t.Fatalf("out = %v", out)
	}
}

func TestBuilderJoin(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("join")
	users := b.LoadCollection("users", []any{
		core.Record{int64(1), "ann"}, core.Record{int64(2), "bob"},
	})
	orders := b.LoadCollection("orders", []any{
		core.Record{int64(1), "book"}, core.Record{int64(1), "pen"}, core.Record{int64(2), "mug"},
	})
	joined, err := users.Join(orders,
		func(q any) any { return q.(core.Record)[0] },
		func(q any) any { return q.(core.Record)[0] },
		func(l, r any) any {
			return core.Record{l.(core.Record).String(1), r.(core.Record).String(1)}
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 3 {
		t.Fatalf("join rows = %d", len(joined))
	}
}

func TestBuilderSGDLoop(t *testing.T) {
	// The paper's running example end-to-end through the public API.
	ctx := fastCtx(t)
	b := ctx.NewPlan("sgd")
	pts := make([]any, 200)
	for i := range pts {
		pts[i] = float64(i%21) - 10 // mean 0 over 0..20 -> -10..10
	}
	points := b.LoadCollection("points", pts).Cache()
	weights := b.LoadCollection("weights", []any{5.0})

	var w float64
	readW := func(bc core.BroadcastCtx) { w = bc.Get("w")[0].(float64) }
	final := weights.Repeat(30, func(l *LoopBody) {
		wvar := l.Var("w")
		grad := l.Read(points).
			Sample("shuffle-first", 20, 0, 42).
			MapWithCtx("grad", readW, func(q any) any { return w - q.(float64) }).
			WithBroadcast(wvar)
		update := grad.
			Reduce("sum", func(a, b any) any { return a.(float64) + b.(float64) }).
			MapWithCtx("update", readW, func(q any) any { return w - 0.1*q.(float64)/20 }).
			WithBroadcast(wvar)
		l.Yield(update)
	})
	out, err := final.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("weights = %v", out)
	}
	w = out[0].(float64)
	if w < -1.5 || w > 1.5 {
		t.Fatalf("SGD did not converge toward 0: %f", w)
	}
}

func TestBuilderDoWhile(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("halve")
	start := b.LoadCollection("x", []any{100.0})
	final := start.DoWhile(1000,
		func(round int, cur []any) bool { return cur[0].(float64) > 1 },
		func(l *LoopBody) {
			l.Yield(l.Var("x").Map("halve", func(q any) any { return q.(float64) / 2 }))
		})
	out, err := final.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].(float64) != 0.78125 {
		t.Fatalf("out = %v", out)
	}
}

func TestRelStoreIntegration(t *testing.T) {
	ctx := fastCtx(t)
	store := ctx.RelStore("pg")
	tab, err := store.CreateTable("nums", []relstore.Column{{Name: "v", Type: relstore.TFloat}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tab.Insert(core.Record{float64(i)})
	}
	out, err := ctx.NewPlan("table").
		ReadTable("pg", "nums", nil, &core.Predicate{Col: 0, Op: core.PredGe, Value: 95.0}).
		Map("extract", func(q any) any { return q.(core.Record).Float(0) }).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("rows = %v", out)
	}
}

func TestExplainShowsChoices(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("explainable")
	b.LoadCollection("data", []any{int64(1)}).
		Map("id", func(q any) any { return q }).
		CollectSink()
	s, err := ctx.Explain(b.Plan())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RheemPlan", "ExecutionPlan", "streams."} {
		if !strings.Contains(s, want) {
			t.Errorf("explain missing %q:\n%s", want, s)
		}
	}
}

func TestExecOptionsSniffer(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("sniffed")
	dq := b.LoadCollection("data", []any{int64(1), int64(2)}).Map("id", func(q any) any { return q })
	sink := dq.CollectSink()
	var seen []any
	res, err := ctx.Execute(b.Plan(), WithSniffer(dq.Op(), func(q any) { seen = append(seen, q) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("sniffed %d", len(seen))
	}
	data, err := res.CollectFrom(sink)
	if err != nil || len(data) != 2 {
		t.Fatalf("collect: %v, %v", data, err)
	}
}

func TestResultMetadata(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("meta")
	b.LoadCollection("data", []any{int64(1)}).Map("id", func(q any) any { return q }).CollectSink()
	res, err := ctx.Execute(b.Plan())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Platforms()) == 0 {
		t.Fatal("no platforms reported")
	}
	if res.Plan() == nil || res.Monitor() == nil {
		t.Fatal("missing plan/monitor")
	}
	if res.Replans() != 0 {
		t.Fatalf("unexpected replans: %d", res.Replans())
	}
}

func TestContextPlatformSubset(t *testing.T) {
	ctx, err := NewContext(Config{Platforms: []string{"streams"}, FastSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.NewPlan("only-streams").
		LoadCollection("d", []any{int64(5)}).
		Map("id", func(q any) any { return q }).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if got := ctx.Registry.Mappings.Platforms(); !reflect.DeepEqual(got, []string{"streams"}) {
		t.Fatalf("platforms = %v", got)
	}
}

func TestSortedOutputDeterministic(t *testing.T) {
	ctx := fastCtx(t)
	data := []any{int64(5), int64(3), int64(9), int64(1)}
	out, err := ctx.NewPlan("sorted").LoadCollection("d", data).Sort(nil).Collect()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, len(out))
	for i, q := range out {
		vals[i] = q.(int64)
	}
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
		t.Fatalf("not sorted: %v", vals)
	}
}

func TestExecuteCtxCancellation(t *testing.T) {
	ctx := fastCtx(t)
	b := ctx.NewPlan("cancellable")
	d := b.LoadCollection("nums", []any{int64(1), int64(2), int64(3)}).
		Map("id", func(q any) any { return q })
	sink := d.CollectSink()

	// A live context executes normally.
	res, err := ctx.ExecuteCtx(context.Background(), b.Plan())
	if err != nil {
		t.Fatal(err)
	}
	if data, err := res.CollectFrom(sink); err != nil || len(data) != 3 {
		t.Fatalf("collect = %v, %v", data, err)
	}

	// A pre-cancelled context aborts at the first stage boundary.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ctx.ExecuteCtx(cancelled, b.Plan()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute = %v, want context.Canceled", err)
	}

	// Execute (no context) still works through the same path.
	if _, err := ctx.Execute(b.Plan()); err != nil {
		t.Fatal(err)
	}

	// Telemetry accumulated across the runs: the optimizer counted its
	// optimizations and the executor recorded per-platform stage time.
	if got := ctx.Metrics.Counter("rheem_optimizer_optimizations_total").Value(); got < 2 {
		t.Fatalf("optimizations counter = %v, want >= 2", got)
	}
	if !strings.Contains(ctx.Metrics.Expose(), "rheem_executor_stages_total") {
		t.Fatalf("executor stage metrics missing:\n%s", ctx.Metrics.Expose())
	}
}
