package restapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"rheem/internal/cluster"
	"rheem/internal/jobs"
	"rheem/internal/telemetry"
	"rheem/internal/trace"
)

// TestClusterMetricsAggregation runs one job on every peer and asserts the
// fleet-merged exposition: summed counters equal the per-peer sum, gauges
// split per peer, and the overview lists every peer alive.
func TestClusterMetricsAggregation(t *testing.T) {
	peers := startFleet(t, 3, false)
	for _, p := range peers {
		wireRunCounts(t, p.addr)
	}

	resp, raw := wireReq(t, http.MethodGet, "http://"+peers[0].addr+"/v1/cluster/metrics?format=json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics: %d %s", resp.StatusCode, raw)
	}
	var cm ClusterMetricsResponse
	if err := json.Unmarshal(raw, &cm); err != nil {
		t.Fatal(err)
	}
	if len(cm.Peers) != 3 || len(cm.Unreachable) != 0 {
		t.Fatalf("peers = %v, unreachable = %v", cm.Peers, cm.Unreachable)
	}
	merged := &telemetry.RegistrySnapshot{Families: cm.Families}
	// One succeeded job per peer: the merged counter is the fleet sum.
	if v, ok := merged.SeriesValue("rheem_jobs_total", `state="succeeded"`); !ok || v != 3 {
		t.Fatalf("merged rheem_jobs_total succeeded = %v, %v, want 3", v, ok)
	}
	// Gauges are not summed: one series per peer, each labeled.
	depth := merged.Family("rheem_jobs_queue_depth")
	if depth == nil || len(depth.Series) != 3 {
		t.Fatalf("queue depth gauge = %+v, want 3 per-peer series", depth)
	}
	for _, s := range depth.Series {
		if !strings.Contains(s.Labels, `peer="`) {
			t.Fatalf("gauge series lacks peer label: %q", s.Labels)
		}
	}

	// The prom rendering of the same merge carries the peer labels too.
	resp, raw = wireReq(t, http.MethodGet, "http://"+peers[1].addr+"/v1/cluster/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics prom: %d", resp.StatusCode)
	}
	body := string(raw)
	if !strings.Contains(body, `rheem_jobs_total{state="succeeded"} 3`) {
		t.Fatalf("prom merge lacks summed counter:\n%s", body)
	}
	if !strings.Contains(body, `rheem_jobs_queue_depth{peer="`) {
		t.Fatalf("prom merge lacks peer-labeled gauges:\n%s", body)
	}
	if resp, raw := wireReq(t, http.MethodGet, "http://"+peers[0].addr+"/v1/cluster/metrics?format=xml", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: %d %s", resp.StatusCode, raw)
	}

	resp, raw = wireReq(t, http.MethodGet, "http://"+peers[2].addr+"/v1/cluster/overview", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overview: %d %s", resp.StatusCode, raw)
	}
	var ov ClusterOverviewResponse
	if err := json.Unmarshal(raw, &ov); err != nil {
		t.Fatal(err)
	}
	if ov.Self != peers[2].addr || len(ov.Peers) != 3 {
		t.Fatalf("overview self=%s peers=%d", ov.Self, len(ov.Peers))
	}
	selves := 0
	for _, po := range ov.Peers {
		if po.State != cluster.StateAlive {
			t.Fatalf("peer %s state = %s", po.Addr, po.State)
		}
		if po.Error != "" {
			t.Fatalf("peer %s scrape error: %s", po.Addr, po.Error)
		}
		if po.Role != "peer" {
			t.Fatalf("peer %s role = %q", po.Addr, po.Role)
		}
		if po.Self {
			selves++
			if po.Addr != peers[2].addr {
				t.Fatalf("self row is %s", po.Addr)
			}
		}
	}
	if selves != 1 {
		t.Fatalf("%d self rows", selves)
	}
}

// TestClusterRoutedTraceStitch is the tentpole acceptance scenario: a job
// submitted to a non-owner is proxied to the ring owner, and the origin's
// trace endpoint serves ONE stitched tree spanning both peers — then keeps
// serving the local tree (annotated) after the owner dies.
func TestClusterRoutedTraceStitch(t *testing.T) {
	peers := startFleet(t, 3, true)
	fp := sinkFingerprint(t, peers[0])
	ownerAddr := peers[0].node.Owner(fp)
	var origin, owner *fleetPeer
	for _, p := range peers {
		if p.addr == ownerAddr {
			owner = p
		} else if origin == nil {
			origin = p
		}
	}
	if origin == nil || owner == nil {
		t.Fatalf("owner %s not in fleet", ownerAddr)
	}

	resp, raw := wireReq(t, http.MethodPost, "http://"+origin.addr+"/v1/jobs", scriptBody(t, wordCountScript))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	if by := resp.Header.Get(ServedByHeader); by != ownerAddr {
		t.Fatalf("served by %q, want owner %s", by, ownerAddr)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitFleetCond(t, "routed job succeeded on owner", func() bool {
		resp, raw := wireReq(t, http.MethodGet, "http://"+ownerAddr+"/v1/jobs/"+sub.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, raw)
		}
		var st JobStatusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(jobs.StateFailed) {
			t.Fatalf("routed job failed: %s", st.Error)
		}
		return st.State == string(jobs.StateSucceeded)
	})

	// The origin — which never executed anything — serves the whole tree.
	resp, raw = wireReq(t, http.MethodGet, "http://"+origin.addr+"/v1/jobs/"+sub.ID+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("origin trace: %d %s", resp.StatusCode, raw)
	}
	var sj trace.SpanJSON
	if err := json.Unmarshal(raw, &sj); err != nil {
		t.Fatal(err)
	}
	if routed, _ := sj.Attr("routed"); routed != "true" {
		t.Fatalf("origin root not marked routed: %s", raw)
	}
	proxy := sj.Find(trace.KindProxy)
	if proxy == nil {
		t.Fatal("origin tree has no proxy span")
	}
	if peer, _ := proxy.Attr("peer"); peer != ownerAddr {
		t.Fatalf("proxy peer attr = %q, want %s", peer, ownerAddr)
	}
	if se, ok := proxy.Attr("stitch_error"); ok {
		t.Fatalf("stitch failed against a live owner: %s", se)
	}
	// The grafted remote subtree: the owner's execution spans, each tagged
	// with the serving peer, hanging under the proxy hop.
	stage := proxy.Find(trace.KindStage)
	if stage == nil {
		t.Fatal("no remote stage span grafted under the proxy span")
	}
	if peer, ok := stage.Attr("peer"); !ok || peer != ownerAddr {
		t.Fatalf("grafted stage peer attr = %q, %v", peer, ok)
	}
	seen := map[int]bool{}
	for _, kind := range []string{trace.KindJob, trace.KindProxy, trace.KindWave, trace.KindStage} {
		for _, sp := range sj.FindAll(kind) {
			if seen[sp.ID] {
				t.Fatalf("duplicate span id %d in stitched tree", sp.ID)
			}
			seen[sp.ID] = true
		}
	}

	// Chrome format of the same stitched tree: remote events carry the peer.
	resp, raw = wireReq(t, http.MethodGet, "http://"+origin.addr+"/v1/jobs/"+sub.ID+"/trace?format=chrome", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace: %d %s", resp.StatusCode, raw)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	remoteEvents := 0
	for _, ev := range events {
		if ev.Args["peer"] == ownerAddr && ev.Cat == trace.KindStage {
			remoteEvents++
		}
	}
	if remoteEvents == 0 {
		t.Fatalf("no peer-attributed remote stage events in %d chrome events", len(events))
	}

	// Graceful degradation: with the owner dead, the origin still answers
	// with its local tree, the failed stitch recorded on the proxy span.
	owner.kill()
	resp, raw = wireReq(t, http.MethodGet, "http://"+origin.addr+"/v1/jobs/"+sub.ID+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace after owner death: %d %s", resp.StatusCode, raw)
	}
	var degraded trace.SpanJSON
	if err := json.Unmarshal(raw, &degraded); err != nil {
		t.Fatal(err)
	}
	proxy = degraded.Find(trace.KindProxy)
	if proxy == nil {
		t.Fatal("degraded tree lost its proxy span")
	}
	if _, ok := proxy.Attr("stitch_error"); !ok {
		t.Fatalf("dead-owner stitch not annotated: %s", raw)
	}
	if proxy.Find(trace.KindStage) != nil {
		t.Fatal("degraded tree still contains a grafted remote stage")
	}
}
