package restapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"rheem"
	"rheem/internal/cluster"
	"rheem/internal/core"
	"rheem/internal/jobs"
	"rheem/internal/rescache"
	"rheem/internal/telemetry"
	"rheem/latin"
)

// fleetPeer is one in-process rheem-server wired the way cmd/rheem-server
// wires -advertise: its own cache, metrics registry, cluster node, and a
// real loopback listener, so routing and the remote cache tier run over
// actual HTTP.
type fleetPeer struct {
	addr    string
	srv     *Server
	node    *cluster.Node
	cache   *rescache.Cache
	metrics *telemetry.Registry
	httpSrv *http.Server
	ln      net.Listener
}

// kill takes the peer off the network for good: heartbeat loop stopped,
// listener closed. The restapi server itself drains in the test cleanup.
func (p *fleetPeer) kill() {
	p.node.Stop()
	if p.httpSrv != nil {
		p.httpSrv.Close()
		p.httpSrv = nil
	}
}

// fleetConfig selects which cluster tiers a test fleet enables.
type fleetConfig struct {
	route bool // -cluster-route: proxy submissions to the ring owner
	exec  bool // -cluster-exec: ship plan fragments to peers
}

// startFleet brings up n peers that all know each other, each holding an
// identical words.txt in its own DFS (named sources fingerprint by name and
// version, so plans fingerprint identically fleet-wide), and waits for
// membership to converge.
func startFleet(t *testing.T, n int, route bool) []*fleetPeer {
	t.Helper()
	return startFleetCfg(t, n, fleetConfig{route: route})
}

func startFleetCfg(t *testing.T, n int, cfg fleetConfig) []*fleetPeer {
	t.Helper()
	peers := make([]*fleetPeer, n)
	addrs := make([]string, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = &fleetPeer{ln: ln, addr: ln.Addr().String()}
		addrs[i] = peers[i].addr
	}
	for i, p := range peers {
		others := append(append([]string(nil), addrs[:i]...), addrs[i+1:]...)
		p.metrics = telemetry.NewRegistry()
		p.cache = rescache.New(rescache.Options{MaxBytes: 16 << 20, Metrics: p.metrics})
		ctx, err := rheem.NewContext(rheem.Config{
			FastSimulation: true,
			Metrics:        p.metrics,
			ResultCache:    p.cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.DFS.WriteLines("words.txt", []string{"a b a", "c a"}); err != nil {
			t.Fatal(err)
		}
		p.node, err = cluster.New(cluster.Options{
			Advertise:         p.addr,
			Peers:             others,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectAfter:      300 * time.Millisecond,
			DeadAfter:         1200 * time.Millisecond,
			FetchTimeout:      2 * time.Second,
			Cache:             p.cache,
			Metrics:           p.metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.cache.SetRemote(p.node)
		p.srv = NewWithOptions(ctx, testUDFs(), Options{
			Jobs:         jobs.Options{Workers: 2, QueueDepth: 8},
			Cluster:      p.node,
			ClusterRoute: cfg.route,
			ClusterExec:  cfg.exec,
		})
		p.httpSrv = &http.Server{Handler: p.srv}
		go p.httpSrv.Serve(p.ln)
		p.node.Start()
		t.Cleanup(func() {
			p.kill()
			drainServer(t, p.srv)
		})
	}
	waitFleetCond(t, "fleet membership converged", func() bool {
		for _, p := range peers {
			members := p.node.Members()
			if len(members) != n {
				return false
			}
			for _, m := range members {
				if m.State != cluster.StateAlive {
					return false
				}
			}
		}
		return true
	})
	return peers
}

func waitFleetCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// wireReq performs one HTTP request against a live fleet peer.
func wireReq(t *testing.T, method, rawURL string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, rawURL, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, rawURL, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func scriptBody(t *testing.T, script string) []byte {
	t.Helper()
	return []byte(`{"script": ` + mustJSON(t, script) + `}`)
}

// wireRunCounts runs WordCount synchronously on one peer and decodes the
// word counts from the collect sink.
func wireRunCounts(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, raw := wireReq(t, http.MethodPost, "http://"+addr+"/v1/run", scriptBody(t, wordCountScript))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run on %s: %d %s", addr, resp.StatusCode, raw)
	}
	var rr RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	return countsOf(t, rr)
}

func countsOf(t *testing.T, rr RunResponse) map[string]int64 {
	t.Helper()
	counts := map[string]int64{}
	for _, raw := range rr.Sinks["counts"] {
		q, err := core.DecodeQuantum(raw)
		if err != nil {
			t.Fatal(err)
		}
		kv := q.(core.KV)
		counts[kv.Key.(string)] = kv.Value.(int64)
	}
	return counts
}

// sinkFingerprint computes WordCount's routing key the way the server does,
// so tests can reason about ring ownership explicitly.
func sinkFingerprint(t *testing.T, p *fleetPeer) string {
	t.Helper()
	compiled, err := latin.Compile(wordCountScript, p.srv.UDFs)
	if err != nil {
		t.Fatal(err)
	}
	fp := p.srv.routeFingerprint(compiled)
	if fp == "" {
		t.Fatal("WordCount has no routable fingerprint")
	}
	return fp
}

func counterOf(p *fleetPeer, name string) float64 {
	return p.metrics.Counter(name).Value()
}

// TestClusterRemoteCacheHit is the tentpole's acceptance scenario: a plan
// computed on peer A is served from the distributed cache by a peer that
// never computed it, proved by rheem_cluster_remote_hits_total.
func TestClusterRemoteCacheHit(t *testing.T) {
	peers := startFleet(t, 3, false)
	a := peers[0]

	want := wireRunCounts(t, a.addr)
	if want["a"] != 3 || want["b"] != 1 || want["c"] != 1 {
		t.Fatalf("cold run counts = %v", want)
	}

	// The sink entry now lives on A and (via write-through) on the ring
	// owner. A peer that is neither is guaranteed a local miss and a remote
	// hit; exactly one of the other two peers can be the owner, so the
	// second submitter always exists.
	fp := sinkFingerprint(t, a)
	owner := a.node.Owner(fp)
	var second *fleetPeer
	for _, p := range peers[1:] {
		if p.addr != owner {
			second = p
			break
		}
	}
	if second == nil {
		t.Fatalf("no non-owner peer for fingerprint %s (owner %s)", fp, owner)
	}

	got := wireRunCounts(t, second.addr)
	if got["a"] != want["a"] || len(got) != len(want) {
		t.Fatalf("remote-served counts %v differ from computed %v", got, want)
	}
	if v := counterOf(second, "rheem_cluster_remote_hits_total"); v < 1 {
		t.Fatalf("rheem_cluster_remote_hits_total on %s = %g, want >= 1", second.addr, v)
	}
	// The fetched entry was adopted locally and the serving side counted it.
	if st := second.cache.Stats(false); st.Entries < 1 {
		t.Errorf("second peer adopted no entries: %+v", st)
	}
	served := 0.0
	for _, p := range peers {
		if p != second {
			served += counterOf(p, "rheem_cluster_serve_hits_total")
		}
	}
	if served < 1 {
		t.Errorf("no peer served an internal cache fetch")
	}

	// The fleet's debug and metrics surfaces reflect the cluster.
	resp, raw := wireReq(t, http.MethodGet, "http://"+second.addr+"/v1/cluster", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster: %d %s", resp.StatusCode, raw)
	}
	var status struct {
		Self        string `json:"self"`
		RingMembers int    `json:"ring_members"`
	}
	if err := json.Unmarshal(raw, &status); err != nil {
		t.Fatal(err)
	}
	if status.Self != second.addr || status.RingMembers != 3 {
		t.Errorf("cluster status = %s", raw)
	}
	if _, raw := wireReq(t, http.MethodGet, "http://"+second.addr+"/v1/metrics", nil); !strings.Contains(string(raw), "rheem_cluster_remote_hits_total") {
		t.Error("metrics exposition lacks rheem_cluster_remote_hits_total")
	}
}

// TestClusterOwnerDeathRecompute kills the ring owner of a cached plan:
// a submitting peer's remote probe fails, the job completes by local
// recompute, and the ring re-converges away from the dead peer.
func TestClusterOwnerDeathRecompute(t *testing.T) {
	peers := startFleet(t, 3, false)
	a := peers[0]

	want := wireRunCounts(t, a.addr)
	fp := sinkFingerprint(t, a)
	ownerAddr := a.node.Owner(fp)
	var owner, second *fleetPeer
	for _, p := range peers {
		if p.addr == ownerAddr {
			owner = p
		}
	}
	for _, p := range peers[1:] {
		if p.addr != ownerAddr {
			second = p
			break
		}
	}
	if owner == nil || second == nil {
		t.Fatalf("owner %s not in fleet, or no second submitter", ownerAddr)
	}

	// Kill the owner and submit immediately: the submitter still believes
	// the owner alive (SuspectAfter has not elapsed), probes it, fails, and
	// recomputes locally.
	owner.kill()
	got := wireRunCounts(t, second.addr)
	if got["a"] != want["a"] || len(got) != len(want) {
		t.Fatalf("counts after owner death %v differ from %v", got, want)
	}
	if v := counterOf(second, "rheem_cluster_remote_errors_total"); v < 1 {
		t.Errorf("rheem_cluster_remote_errors_total = %g, want >= 1 (probe to dead owner)", v)
	}
	if v := counterOf(second, "rheem_cluster_remote_hits_total"); v != 0 {
		t.Errorf("rheem_cluster_remote_hits_total = %g, want 0", v)
	}

	// The ring re-converges: the dead peer loses ownership of everything.
	waitFleetCond(t, "ring excludes dead owner", func() bool {
		return second.node.Owner(fp) != ownerAddr
	})
	// And jobs keep completing against the shrunken fleet.
	if got := wireRunCounts(t, second.addr); got["a"] != want["a"] {
		t.Fatalf("post-reconvergence counts = %v", got)
	}
}

// TestClusterGossipInvalidation checks fleet-wide invalidation: a DELETE
// /v1/cache?source= on one peer gossips the bumped source version to every
// peer, dropping their entries for that source.
func TestClusterGossipInvalidation(t *testing.T) {
	peers := startFleet(t, 3, false)
	a := peers[0]

	// Give every peer local entries for words.txt (the later runs adopt the
	// sink entry via the remote tier).
	for _, p := range peers {
		wireRunCounts(t, p.addr)
	}
	for _, p := range peers {
		if st := p.cache.Stats(false); st.Entries < 1 {
			t.Fatalf("peer %s holds no entries before invalidation", p.addr)
		}
	}

	resp, raw := wireReq(t, http.MethodDelete,
		"http://"+a.addr+"/v1/cache?source="+url.QueryEscape("dfs://words.txt"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: %d %s", resp.StatusCode, raw)
	}

	// Gossip converges the version table and drops the entries fleet-wide.
	for _, p := range peers[1:] {
		p := p
		waitFleetCond(t, "gossip invalidation reached "+p.addr, func() bool {
			return p.cache.Versions()["dfs://words.txt"] == 1 && p.cache.Stats(false).Entries == 0
		})
		if v := counterOf(p, "rheem_cluster_gossip_invalidations_total"); v < 1 {
			t.Errorf("gossip invalidation counter on %s = %g", p.addr, v)
		}
	}

	// Satellite: the stats endpoint exposes the converged version table.
	resp, raw = wireReq(t, http.MethodGet, "http://"+peers[1].addr+"/v1/cache/stats?details=true", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, raw)
	}
	var st rescache.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.SourceVersions["dfs://words.txt"] != 1 {
		t.Errorf("stats source_versions = %v, want dfs://words.txt at 1", st.SourceVersions)
	}
}

// TestClusterRouting submits the same plan to all three peers with
// -cluster-route: the two non-owners proxy to the fingerprint's owner
// (X-Rheem-Served-By), and the resulting jobs are pollable there.
func TestClusterRouting(t *testing.T) {
	peers := startFleet(t, 3, true)
	fp := sinkFingerprint(t, peers[0])
	ownerAddr := peers[0].node.Owner(fp)

	routed := 0
	type submitted struct{ id, pollAddr string }
	var subs []submitted
	for _, p := range peers {
		resp, raw := wireReq(t, http.MethodPost, "http://"+p.addr+"/v1/jobs", scriptBody(t, wordCountScript))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit on %s: %d %s", p.addr, resp.StatusCode, raw)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		servedBy := resp.Header.Get(ServedByHeader)
		pollAddr := p.addr
		if servedBy != "" {
			routed++
			if servedBy != ownerAddr {
				t.Errorf("submission on %s served by %s, want owner %s", p.addr, servedBy, ownerAddr)
			}
			pollAddr = servedBy
		} else if p.addr != ownerAddr {
			t.Errorf("submission on non-owner %s was not routed", p.addr)
		}
		subs = append(subs, submitted{id: sub.ID, pollAddr: pollAddr})
	}
	if routed != 2 {
		t.Fatalf("%d submissions routed, want exactly 2 (owner %s)", routed, ownerAddr)
	}

	// Every job id lives on the peer named in the response.
	for _, sub := range subs {
		sub := sub
		waitFleetCond(t, "job "+sub.id+" succeeded on "+sub.pollAddr, func() bool {
			resp, raw := wireReq(t, http.MethodGet, "http://"+sub.pollAddr+"/v1/jobs/"+sub.id, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("poll %s on %s: %d %s", sub.id, sub.pollAddr, resp.StatusCode, raw)
			}
			var st JobStatusResponse
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatal(err)
			}
			if st.State == string(jobs.StateFailed) {
				t.Fatalf("job %s failed: %s", sub.id, st.Error)
			}
			return st.State == string(jobs.StateSucceeded)
		})
		resp, raw := wireReq(t, http.MethodGet, "http://"+sub.pollAddr+"/v1/jobs/"+sub.id+"/result", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: %d %s", sub.id, resp.StatusCode, raw)
		}
		var rr RunResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatal(err)
		}
		if counts := countsOf(t, rr); counts["a"] != 3 {
			t.Errorf("routed job %s counts = %v", sub.id, counts)
		}
	}
	ownerPeer := peers[0]
	for _, p := range peers {
		if p.addr == ownerAddr {
			ownerPeer = p
		}
	}
	if v := counterOf(ownerPeer, "rheem_cluster_routed_requests_total"); v != 0 {
		t.Errorf("owner routed %g requests to itself", v)
	}
}
