package restapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rheem"
	"rheem/internal/cluster"
	"rheem/internal/jobs"
	"rheem/internal/rescache"
	"rheem/internal/telemetry"
	"rheem/internal/xlog"
)

func TestMetricsJSONFormat(t *testing.T) {
	s := newTestServer(t)
	if rec := post(t, s, "/v1/run", wordCountScript); rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	rec := get(s, "/v1/metrics?format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics json: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content-type = %q", ct)
	}
	var snap telemetry.RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.SeriesValue("rheem_jobs_total", `state="succeeded"`); !ok || v < 1 {
		t.Fatalf("rheem_jobs_total succeeded = %v, %v", v, ok)
	}
	if fam := snap.Family("rheem_executor_stages_total"); fam == nil || fam.Help == "" {
		t.Fatalf("executor family lacks help: %+v", fam)
	}
	if rec := get(s, "/v1/metrics?format=xml"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad format: %d %s", rec.Code, rec.Body)
	}
}

func TestHealthJSON(t *testing.T) {
	s := newTestServer(t)
	rec := get(s, "/v1/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d %s", rec.Code, rec.Body)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "single" || h.UptimeSeconds < 0 {
		t.Fatalf("health payload = %+v", h)
	}
	if h.Advertise != "" || h.PeersAlive != 0 {
		t.Fatalf("single-node health reports cluster fields: %+v", h)
	}
}

// TestAccessLog asserts the debug-level access log carries the request id
// stamped on the response, and that the id header is present regardless of
// log level.
func TestAccessLog(t *testing.T) {
	ctx, err := rheem.NewContext(rheem.Config{FastSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := NewWithOptions(ctx, testUDFs(), Options{Log: xlog.New(&buf, xlog.LevelDebug)})
	rec := get(s, "/v1/health")
	reqID := rec.Header().Get(RequestIDHeader)
	if reqID == "" || reqID == "-" {
		t.Fatalf("no request id header: %q", reqID)
	}
	line := buf.String()
	for _, want := range []string{
		"msg=\"http request\"", "request_id=" + reqID,
		"method=GET", "path=/v1/health", "status=200", "duration_ms=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log missing %q:\n%s", want, line)
		}
	}

	// Above debug level the log stays silent but the id header remains.
	var quiet bytes.Buffer
	s2 := NewWithOptions(ctx, testUDFs(), Options{Log: xlog.New(&quiet, xlog.LevelInfo)})
	rec = get(s2, "/v1/health")
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Fatal("no request id at info level")
	}
	if strings.Contains(quiet.String(), "http request") {
		t.Fatalf("access log emitted at info level:\n%s", quiet.String())
	}
}

func TestJobProfileEndpoint(t *testing.T) {
	// The gated script pins two platforms, forcing a stage boundary so the
	// downstream stage observes input quanta (a fully-fused single-stage job
	// legitimately reports quanta_in = 0).
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	close(release)
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateSucceeded)

	rec = get(s, "/v1/jobs/"+sub.ID+"/profile")
	if rec.Code != http.StatusOK {
		t.Fatalf("profile: %d %s", rec.Code, rec.Body)
	}
	var p rheem.Profile
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) == 0 {
		t.Fatal("profile has no stages")
	}
	// Observed side: the job did real work.
	if p.WallMs <= 0 || p.QuantaOut <= 0 || p.QuantaIn <= 0 {
		t.Fatalf("observed resources empty: wall=%v in=%d out=%d", p.WallMs, p.QuantaIn, p.QuantaOut)
	}
	// Estimated side: the optimizer's cost and the mismatch against it.
	if p.PlanCostMs <= 0 || p.MismatchFactor <= 0 {
		t.Fatalf("estimates missing: cost=%v mismatch=%v", p.PlanCostMs, p.MismatchFactor)
	}
	estStages := 0
	for _, st := range p.Stages {
		if st.Stage == "" || st.Platform == "" {
			t.Fatalf("anonymous stage: %+v", st)
		}
		if len(st.Operators) == 0 {
			t.Fatalf("stage %s has no operators", st.Stage)
		}
		if st.EstCostMs > 0 {
			estStages++
			if st.MismatchFactor <= 0 {
				t.Fatalf("stage %s has estimate but no mismatch: %+v", st.Stage, st)
			}
		}
	}
	if estStages == 0 {
		t.Fatal("no stage carries an optimizer estimate")
	}
	hasCard := false
	for _, st := range p.Stages {
		for _, op := range st.Operators {
			if op.EstimatedCard != "" && op.ObservedCard > 0 {
				hasCard = true
			}
		}
	}
	if !hasCard {
		t.Fatal("no operator pairs observed_card with estimated_card")
	}

	if rec := get(s, "/v1/jobs/nope/profile"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job profile: %d", rec.Code)
	}
}

// TestJobProfileNotFinished pins the profile endpoint's conflict mapping: a
// running job has no profile yet and must answer 409, not 500.
func TestJobProfileNotFinished(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateRunning)
	if rec := get(s, "/v1/jobs/"+sub.ID+"/profile"); rec.Code != http.StatusConflict {
		t.Fatalf("running job profile: %d %s", rec.Code, rec.Body)
	}
	close(release)
	waitState(t, s, sub.ID, jobs.StateSucceeded)
}

// TestMetricsLint is the verify.sh gate: wire up every subsystem the way
// cmd/rheem-server does (cache, cluster node, runtime sampler, jobs, REST),
// exercise the system, and require that every registered rheem_* metric
// carries HELP text.
func TestMetricsLint(t *testing.T) {
	metrics := telemetry.NewRegistry()
	cache := rescache.New(rescache.Options{MaxBytes: 16 << 20, Metrics: metrics})
	ctx, err := rheem.NewContext(rheem.Config{
		FastSimulation: true,
		Metrics:        metrics,
		ResultCache:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DFS.WriteLines("words.txt", []string{"a b a", "c a"}); err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(cluster.Options{
		Advertise:         "127.0.0.1:65000",
		HeartbeatInterval: time.Hour,
		Cache:             cache,
		Metrics:           metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetRemote(node)
	sampler := telemetry.StartRuntimeSampler(metrics, time.Hour)
	defer sampler.Stop()
	s := NewWithOptions(ctx, testUDFs(), Options{
		Jobs:         jobs.Options{Workers: 2, QueueDepth: 4},
		Cluster:      node,
		ClusterRoute: true,
	})
	defer drainServer(t, s)

	// Touch the major paths so lazily-created families exist: a sync run
	// (cold, then cache hit), an async job with trace and profile reads, and
	// a source invalidation.
	for i := 0; i < 2; i++ {
		if rec := post(t, s, "/v1/run", wordCountScript); rec.Code != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec := postScript(t, s, "/v1/jobs", wordCountScript)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateSucceeded)
	get(s, "/v1/jobs/"+sub.ID+"/trace")
	get(s, "/v1/jobs/"+sub.ID+"/profile")
	del := httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/cache?source=dfs%3A%2F%2Fwords.txt", nil))
	if del.Code != http.StatusOK {
		t.Fatalf("invalidate: %d %s", del.Code, del.Body)
	}

	if missing := metrics.MissingHelp("rheem_"); len(missing) > 0 {
		t.Fatalf("metrics without HELP text: %v", missing)
	}
}
