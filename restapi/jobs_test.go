package restapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rheem"
	"rheem/internal/core"
	"rheem/internal/jobs"
	"rheem/latin"
)

// gatedServer builds a server whose "gate" UDF blocks every quantum until
// the returned release channel is closed, so tests can hold jobs in a
// running state deterministically.
func gatedServer(t *testing.T, opts Options) (*Server, chan struct{}) {
	t.Helper()
	ctx, err := rheem.NewContext(rheem.Config{FastSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DFS.WriteLines("words.txt", []string{"a b a", "c a"}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	udfs := latin.NewRegistry()
	udfs.RegisterMap("gate", func(q any) any {
		<-release
		return q
	})
	udfs.RegisterMap("boom", func(q any) any { panic("udf exploded") })
	udfs.RegisterFlatMap("split", func(q any) []any {
		fields := strings.Fields(q.(string))
		out := make([]any, len(fields))
		for i, w := range fields {
			out[i] = core.KV{Key: w, Value: int64(1)}
		}
		return out
	})
	return NewWithOptions(ctx, udfs, opts), release
}

const gatedScript = `
	lines = load 'dfs://words.txt';
	gated = map lines using gate with platform 'streams';
	words = flatmap gated using split with platform 'spark';
	collect words;
`

func postScript(t *testing.T, s *Server, path, script string) *httptest.ResponseRecorder {
	t.Helper()
	body := `{"script": ` + mustJSON(t, script) + `}`
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func jobState(t *testing.T, s *Server, id string) JobStatusResponse {
	t.Helper()
	rec := get(s, "/v1/jobs/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %s: %d %s", id, rec.Code, rec.Body)
	}
	var st JobStatusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, s *Server, id string, want ...jobs.State) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := jobState(t, s, id)
		for _, w := range want {
			if st.State == string(w) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (last: %s)", id, want, jobState(t, s, id).State)
	return JobStatusResponse{}
}

func TestJobLifecycleOverREST(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 2, QueueDepth: 4}})
	close(release) // no blocking for this test
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.State != "queued" {
		t.Fatalf("submit payload = %+v", sub)
	}

	st := waitState(t, s, sub.ID, jobs.StateSucceeded)
	if st.StartedAt == nil || st.FinishedAt == nil || st.Attempts != 1 {
		t.Fatalf("finished status = %+v", st)
	}
	// The monitor snapshot (per-job stage timings) rides on the status.
	if st.Monitor == nil || len(st.Monitor.Stages) == 0 {
		t.Fatalf("no monitor snapshot: %+v", st)
	}
	platforms := map[string]bool{}
	for _, stage := range st.Monitor.Stages {
		platforms[stage.Platform] = true
	}
	if !platforms["streams"] || !platforms["spark"] {
		t.Fatalf("snapshot platforms = %v", platforms)
	}

	rec = get(s, "/v1/jobs/"+sub.ID+"/result")
	if rec.Code != http.StatusOK {
		t.Fatalf("result: %d %s", rec.Code, rec.Body)
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Sinks["words"]) != 5 {
		t.Fatalf("sink rows = %d", len(resp.Sinks["words"]))
	}

	// Sink selection: a known name filters, an unknown one is a 400.
	if rec := get(s, "/v1/jobs/"+sub.ID+"/result?sink=words"); rec.Code != http.StatusOK {
		t.Fatalf("result?sink=words: %d", rec.Code)
	}
	if rec := get(s, "/v1/jobs/"+sub.ID+"/result?sink=nope"); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown sink: %d %s", rec.Code, rec.Body)
	}
}

// TestAdmissionControlUnderLoad is the acceptance scenario: a 2-worker,
// 4-slot server takes 8 concurrent submissions; at least one gets a 429,
// no submission is lost, and every admitted job reaches a terminal state.
func TestAdmissionControlUnderLoad(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 2, QueueDepth: 4}})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admitted []string
	rejected := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postScript(t, s, "/v1/jobs", gatedScript)
			mu.Lock()
			defer mu.Unlock()
			switch rec.Code {
			case http.StatusAccepted:
				var sub SubmitResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				admitted = append(admitted, sub.ID)
			case http.StatusTooManyRequests:
				rejected++
			default:
				t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
			}
		}()
	}
	wg.Wait()
	if rejected < 1 {
		t.Fatalf("expected at least one 429 (admitted %d)", len(admitted))
	}
	if len(admitted)+rejected != 8 {
		t.Fatalf("lost submissions: %d admitted + %d rejected != 8", len(admitted), rejected)
	}
	close(release)
	for _, id := range admitted {
		st := waitState(t, s, id, jobs.StateSucceeded, jobs.StateFailed, jobs.StateCancelled)
		if st.State != string(jobs.StateSucceeded) {
			t.Fatalf("admitted job %s ended %s (%s)", id, st.State, st.Error)
		}
	}

	// The metrics endpoint reflects the outcome counts and the latency
	// histogram of everything that ran.
	rec := get(s, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		fmt.Sprintf(`rheem_jobs_total{state="succeeded"} %d`, len(admitted)),
		fmt.Sprintf("rheem_jobs_rejected_total %d", rejected),
		fmt.Sprintf("rheem_job_duration_seconds_count %d", len(admitted)),
		"rheem_job_duration_seconds_bucket",
		"rheem_executor_stages_total",
		"rheem_optimizer_optimizations_total",
		"rheem_jobs_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestJobCancellationBetweenStages(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	// Wait until the job is executing its first (gated) stage, then cancel.
	waitState(t, s, sub.ID, jobs.StateRunning)
	del := httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+sub.ID, nil))
	if del.Code != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", del.Code, del.Body)
	}
	// Release the gate: the first stage finishes, and the executor aborts
	// at the stage boundary instead of running the second stage.
	close(release)
	st := waitState(t, s, sub.ID, jobs.StateSucceeded, jobs.StateFailed, jobs.StateCancelled)
	if st.State != string(jobs.StateCancelled) {
		t.Fatalf("state after cancel = %s (%s)", st.State, st.Error)
	}
	// Its result is gone for good, reported as a conflict.
	if rec := get(s, "/v1/jobs/"+sub.ID+"/result"); rec.Code != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d %s", rec.Code, rec.Body)
	}
	// A second cancel is a conflict, too.
	del = httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+sub.ID, nil))
	if del.Code != http.StatusConflict {
		t.Fatalf("second cancel: %d", del.Code)
	}
}

func TestCancelQueuedJobOverREST(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	defer close(release)
	// First job occupies the only worker.
	first := postScript(t, s, "/v1/jobs", gatedScript)
	if first.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", first.Code)
	}
	var running SubmitResponse
	if err := json.Unmarshal(first.Body.Bytes(), &running); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, jobs.StateRunning)
	// Second stays queued; cancel it there.
	second := postScript(t, s, "/v1/jobs", gatedScript)
	var queued SubmitResponse
	if err := json.Unmarshal(second.Body.Bytes(), &queued); err != nil {
		t.Fatal(err)
	}
	del := httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+queued.ID, nil))
	if del.Code != http.StatusAccepted {
		t.Fatalf("cancel queued: %d %s", del.Code, del.Body)
	}
	if st := waitState(t, s, queued.ID, jobs.StateCancelled); st.StartedAt != nil {
		t.Fatalf("cancelled queued job reports a start time: %+v", st)
	}
}

func TestSyncRunSharesAdmissionControl(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 1}})
	defer close(release)
	// Saturate: one job running (worker busy in the gate), one queued.
	first := postScript(t, s, "/v1/jobs", gatedScript)
	if first.Code != http.StatusAccepted {
		t.Fatalf("submit running: %d %s", first.Code, first.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(first.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateRunning)
	if rec := postScript(t, s, "/v1/jobs", gatedScript); rec.Code != http.StatusAccepted {
		t.Fatalf("submit queued: %d %s", rec.Code, rec.Body)
	}
	// Both endpoints share the same admission control and must now reject,
	// sending a Retry-After back-off hint with each 429.
	if rec := postScript(t, s, "/v1/run", gatedScript); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("sync /v1/run while saturated: %d %s", rec.Code, rec.Body)
	} else if got := rec.Header().Get("Retry-After"); got != RetryAfterSeconds {
		t.Fatalf("sync 429 Retry-After = %q, want %q", got, RetryAfterSeconds)
	}
	if rec := postScript(t, s, "/v1/jobs", gatedScript); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("async submit while saturated: %d", rec.Code)
	} else if got := rec.Header().Get("Retry-After"); got != RetryAfterSeconds {
		t.Fatalf("async 429 Retry-After = %q, want %q", got, RetryAfterSeconds)
	}
}

func TestRequestBodyCap(t *testing.T) {
	s, release := gatedServer(t, Options{
		Jobs:         jobs.Options{Workers: 1, QueueDepth: 1},
		MaxBodyBytes: 512,
	})
	defer close(release)
	huge := strings.Repeat("x", 2048)
	rec := postScript(t, s, "/v1/run", "lines = load '"+huge+"'; collect lines;")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", rec.Code, rec.Body)
	}
	if rec := postScript(t, s, "/v1/jobs", "lines = load '"+huge+"'; collect lines;"); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized job body: %d", rec.Code)
	}
}

func TestUnknownSinkIs400(t *testing.T) {
	s := newTestServer(t)
	rec := post(t, s, "/v1/run", "lines = load 'dfs://words.txt'; collect missing;")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown sink: %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "missing") {
		t.Fatalf("error does not name the sink: %s", rec.Body)
	}
	// Other compile errors keep their 422.
	if rec := post(t, s, "/v1/run", "x = frobnicate y;"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("compile error: %d", rec.Code)
	}
}

// TestPanickingUDFFailsJobNotServer submits a script whose UDF panics on a
// parallel engine's worker goroutines; the panic must surface as a failed
// job while the server keeps serving.
func TestPanickingUDFFailsJobNotServer(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	close(release)
	const boomScript = `
		lines = load 'dfs://words.txt';
		bad = map lines using boom with platform 'spark';
		collect bad;
	`
	rec := postScript(t, s, "/v1/jobs", boomScript)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, sub.ID, jobs.StateSucceeded, jobs.StateFailed, jobs.StateCancelled)
	if st.State != string(jobs.StateFailed) {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic") || !strings.Contains(st.Error, "udf exploded") {
		t.Fatalf("error does not surface the panic: %q", st.Error)
	}
	// The server survived: a healthy script still runs.
	if rec := postScript(t, s, "/v1/run", gatedScript); rec.Code != http.StatusOK {
		t.Fatalf("server unhealthy after UDF panic: %d %s", rec.Code, rec.Body)
	}
}

func TestJobNotFound(t *testing.T) {
	s := newTestServer(t)
	if rec := get(s, "/v1/jobs/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("status of unknown job: %d", rec.Code)
	}
	if rec := get(s, "/v1/jobs/nope/result"); rec.Code != http.StatusNotFound {
		t.Fatalf("result of unknown job: %d", rec.Code)
	}
	del := httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/jobs/nope", nil))
	if del.Code != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: %d", del.Code)
	}
}
