package restapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rheem"
	"rheem/internal/core"
	"rheem/internal/jobs"
	"rheem/internal/rescache"
	"rheem/internal/storage/dfs"
	"rheem/internal/telemetry"
	"rheem/internal/trace"
	"rheem/latin"
)

// newCachedServer builds a server whose context carries a result cache, the
// way cmd/rheem-server wires it with -cache-bytes > 0.
func newCachedServer(t *testing.T, jobOpts jobs.Options) *Server {
	t.Helper()
	metrics := telemetry.NewRegistry()
	cache := rescache.New(rescache.Options{MaxBytes: 16 << 20, Metrics: metrics})
	ctx, err := rheem.NewContext(rheem.Config{
		FastSimulation: true,
		Metrics:        metrics,
		ResultCache:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DFS.WriteLines("words.txt", []string{"a b a", "c a"}); err != nil {
		t.Fatal(err)
	}
	return NewWithOptions(ctx, testUDFs(), Options{Jobs: jobOpts})
}

// submitAndWait submits a script as an async job and waits for success.
func submitAndWait(t *testing.T, s *Server, script string) string {
	t.Helper()
	rec := postScript(t, s, "/v1/jobs", script)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateSucceeded)
	return sub.ID
}

func jobCounts(t *testing.T, s *Server, id string) map[string]int64 {
	t.Helper()
	rec := get(s, "/v1/jobs/"+id+"/result")
	if rec.Code != http.StatusOK {
		t.Fatalf("result %s: %d %s", id, rec.Code, rec.Body)
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, raw := range resp.Sinks["counts"] {
		q, err := core.DecodeQuantum(raw)
		if err != nil {
			t.Fatal(err)
		}
		kv := q.(core.KV)
		counts[kv.Key.(string)] = kv.Value.(int64)
	}
	return counts
}

// TestSameJobTwiceHitsCache is the tentpole's acceptance test: the second
// submission of an identical job is served from the cache — its trace has a
// cache-hit span and no re-executed upstream operators — and results match.
func TestSameJobTwiceHitsCache(t *testing.T) {
	s := newCachedServer(t, jobs.Options{Workers: 2, QueueDepth: 8})
	defer drainServer(t, s)

	id1 := submitAndWait(t, s, wordCountScript)
	tr1 := jobTrace(t, s, id1, "")
	if tr1.Find(trace.KindCacheHit) != nil {
		t.Error("first (cold) run has a cache-hit span")
	}
	if tr1.Find(trace.KindCacheStore) == nil {
		t.Error("first run has no cache-store span")
	}

	id2 := submitAndWait(t, s, wordCountScript)
	tr2 := jobTrace(t, s, id2, "")
	if tr2.Find(trace.KindCacheHit) == nil {
		t.Fatal("second (warm) run has no cache-hit span")
	}
	if tr2.Find(trace.KindCacheProbe) == nil {
		t.Error("second run has no cache-probe span")
	}
	// The upstream scan/flatmap/reduce must not re-execute: no operator
	// span besides the cache-scan source and the sink may appear.
	for _, op := range tr2.FindAll(trace.KindOperator) {
		if strings.Contains(op.Name, "FlatMap") || strings.Contains(op.Name, "ReduceBy") ||
			strings.Contains(op.Name, "TextFileSource") {
			t.Errorf("warm run re-executed upstream operator %s", op.Name)
		}
	}

	if c1, c2 := jobCounts(t, s, id1), jobCounts(t, s, id2); len(c2) != len(c1) || c2["a"] != c1["a"] {
		t.Errorf("cached result differs: %v vs %v", c2, c1)
	}

	// The hit counter is exposed over /v1/metrics.
	if v := s.Ctx.Metrics.Counter("rheem_cache_hits_total").Value(); v < 1 {
		t.Errorf("rheem_cache_hits_total = %g, want >= 1", v)
	}
	rec := get(s, "/v1/metrics")
	if !strings.Contains(rec.Body.String(), "rheem_cache_hits_total") {
		t.Error("metrics exposition lacks rheem_cache_hits_total")
	}
}

// TestConcurrentIdenticalJobsComputeOnce submits N identical jobs
// concurrently: single-flight must elect exactly one leader that computes
// (one cache-store) while every other job waits and then hits.
func TestConcurrentIdenticalJobsComputeOnce(t *testing.T) {
	const n = 6
	s := newCachedServer(t, jobs.Options{Workers: 4, QueueDepth: n + 2})
	defer drainServer(t, s)

	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submitAndWait(t, s, wordCountScript)
		}(i)
	}
	wg.Wait()

	computed, hits := 0, 0
	for _, id := range ids {
		tr := jobTrace(t, s, id, "")
		if tr.Find(trace.KindCacheStore) != nil {
			computed++
		}
		if tr.Find(trace.KindCacheHit) != nil {
			hits++
		}
	}
	if computed != 1 {
		t.Errorf("%d jobs computed (have cache-store spans), want exactly 1", computed)
	}
	if hits != n-1 {
		t.Errorf("%d jobs hit the cache, want %d", hits, n-1)
	}
	want := jobCounts(t, s, ids[0])
	for _, id := range ids[1:] {
		if got := jobCounts(t, s, id); got["a"] != want["a"] || len(got) != len(want) {
			t.Errorf("job %s result %v differs from %v", id, got, want)
		}
	}
}

func TestCacheStatsEndpoint(t *testing.T) {
	s := newCachedServer(t, jobs.Options{Workers: 1, QueueDepth: 4})
	defer drainServer(t, s)
	submitAndWait(t, s, wordCountScript)

	rec := get(s, "/v1/cache/stats?details=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var st rescache.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries < 1 || st.Stores < 1 || len(st.Details) < 1 {
		t.Fatalf("stats after one job = %+v", st)
	}
	if st.Details[0].Sources[0].Name != "dfs://words.txt" {
		t.Errorf("entry sources = %+v, want the input file", st.Details[0].Sources)
	}

	// Per-fingerprint delete.
	fp := st.Details[0].Fingerprint
	del := httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/cache/"+fp, nil))
	if del.Code != http.StatusOK {
		t.Fatalf("delete %s: %d %s", fp, del.Code, del.Body)
	}
	del = httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/cache/"+fp, nil))
	if del.Code != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", del.Code)
	}
}

func TestCacheInvalidationEndpoints(t *testing.T) {
	s := newCachedServer(t, jobs.Options{Workers: 1, QueueDepth: 4})
	defer drainServer(t, s)
	submitAndWait(t, s, wordCountScript)

	// Invalidate the source dataset: the entry reading it is dropped and a
	// rerun recomputes (no cache-hit span).
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/cache?source=dfs%3A%2F%2Fwords.txt", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("invalidate: %d %s", rec.Code, rec.Body)
	}
	var inv map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &inv); err != nil {
		t.Fatal(err)
	}
	if inv["dropped"].(float64) < 1 {
		t.Errorf("invalidation dropped %v entries, want >= 1", inv["dropped"])
	}
	id := submitAndWait(t, s, wordCountScript)
	if tr := jobTrace(t, s, id, ""); tr.Find(trace.KindCacheHit) != nil {
		t.Error("job after source invalidation still hit the cache")
	}

	// Full clear.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/cache", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("clear: %d %s", rec.Code, rec.Body)
	}
	stats := get(s, "/v1/cache/stats")
	var st rescache.Stats
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 {
		t.Errorf("entries after clear = %d", st.Entries)
	}
}

func TestCacheEndpointsWithoutCache(t *testing.T) {
	s := newTestServer(t) // no ResultCache configured
	for _, req := range []*http.Request{
		httptest.NewRequest(http.MethodGet, "/v1/cache/stats", nil),
		httptest.NewRequest(http.MethodDelete, "/v1/cache", nil),
		httptest.NewRequest(http.MethodDelete, "/v1/cache/abc", nil),
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s without cache: %d, want 404", req.Method, req.URL.Path, rec.Code)
		}
	}
}

// TestCacheSpillOverREST drives the spill tier end-to-end through the REST
// surface: a job's cached result is demoted to disk by a higher-benefit
// store, a resubmission is served by a disk reload (cache-hit span with
// tier=disk), and the spill counters appear in /v1/cache/stats and
// /v1/metrics.
func TestCacheSpillOverREST(t *testing.T) {
	metrics := telemetry.NewRegistry()
	spill, err := dfs.New(t.TempDir(), dfs.Options{Replication: 1, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache := rescache.New(rescache.Options{
		MaxBytes:      512,
		SpillStore:    spill,
		SpillMaxBytes: 1 << 20,
		Metrics:       metrics,
	})
	ctx, err := rheem.NewContext(rheem.Config{
		FastSimulation: true,
		Metrics:        metrics,
		ResultCache:    cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DFS.WriteLines("words.txt", []string{"a b a", "c a"}); err != nil {
		t.Fatal(err)
	}
	udfs := latin.NewRegistry()
	udfs.RegisterFlatMap("split", func(q any) []any {
		fields := strings.Fields(q.(string))
		out := make([]any, len(fields))
		for i, w := range fields {
			out[i] = core.KV{Key: w, Value: int64(1)}
		}
		return out
	})
	udfs.RegisterKey("wordOf", func(q any) any { return q.(core.KV).Key })
	udfs.RegisterReduce("sum", func(a, b any) any {
		ka, kb := a.(core.KV), b.(core.KV)
		return core.KV{Key: ka.Key, Value: ka.Value.(int64) + kb.Value.(int64)}
	})
	s := NewWithOptions(ctx, udfs, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	defer drainServer(t, s)

	id1 := submitAndWait(t, s, wordCountScript)
	// A filler entry the size of the whole RAM tier demotes the job's
	// cached results to disk.
	if !cache.Put("filler", []any{int64(1)}, 1e6, 512, nil) {
		t.Fatal("filler rejected")
	}
	var st rescache.Stats
	rec := get(s, "/v1/cache/stats?details=true")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Spills < 1 || st.SpillEntries < 1 || st.SpillBytes <= 0 {
		t.Fatalf("stats after demotion: %+v", st)
	}
	diskEntries := 0
	for _, d := range st.Details {
		if d.Tier == "disk" {
			diskEntries++
		}
	}
	if diskEntries != st.SpillEntries {
		t.Errorf("details list %d disk entries, stats say %d", diskEntries, st.SpillEntries)
	}

	// Resubmission: served by a disk-tier reload.
	id2 := submitAndWait(t, s, wordCountScript)
	tr := jobTrace(t, s, id2, "")
	hitSpan := tr.Find(trace.KindCacheHit)
	if hitSpan == nil {
		t.Fatal("warm run after demotion has no cache-hit span")
	}
	if tier, _ := hitSpan.Attr("tier"); tier != "disk" {
		t.Errorf("cache-hit tier = %q, want disk", tier)
	}
	if tr.Find(trace.KindCacheReload) == nil {
		t.Error("warm run has no cache-reload span")
	}
	if c1, c2 := jobCounts(t, s, id1), jobCounts(t, s, id2); c2["a"] != c1["a"] || len(c2) != len(c1) {
		t.Errorf("reloaded result differs: %v vs %v", c2, c1)
	}

	rec = get(s, "/v1/cache/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SpillReloads < 1 {
		t.Errorf("spill_reloads = %d after warm run, want >= 1", st.SpillReloads)
	}
	body := get(s, "/v1/metrics").Body.String()
	for _, metric := range []string{
		"rheem_cache_spills_total", "rheem_cache_spill_reloads_total",
		"rheem_cache_spill_bytes", "rheem_cache_spill_entries",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics exposition lacks %s", metric)
		}
	}
}

// drainServer shuts the server's job manager down so background workers do
// not leak into other tests.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Logf("drain: %v", err)
	}
}
