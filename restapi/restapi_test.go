package restapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rheem"
	"rheem/internal/core"
	"rheem/latin"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	ctx, err := rheem.NewContext(rheem.Config{FastSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DFS.WriteLines("words.txt", []string{"a b a", "c a"}); err != nil {
		t.Fatal(err)
	}
	return New(ctx, testUDFs())
}

// testUDFs is the WordCount UDF set shared by every server-construction
// helper in this package.
func testUDFs() *latin.Registry {
	udfs := latin.NewRegistry()
	udfs.RegisterFlatMap("split", func(q any) []any {
		fields := strings.Fields(q.(string))
		out := make([]any, len(fields))
		for i, w := range fields {
			out[i] = core.KV{Key: w, Value: int64(1)}
		}
		return out
	})
	udfs.RegisterKey("wordOf", func(q any) any { return q.(core.KV).Key })
	udfs.RegisterReduce("sum", func(a, b any) any {
		ka, kb := a.(core.KV), b.(core.KV)
		return core.KV{Key: ka.Key, Value: ka.Value.(int64) + kb.Value.(int64)}
	})
	return udfs
}

func post(t *testing.T, s *Server, path, script string) *httptest.ResponseRecorder {
	t.Helper()
	body := `{"script": ` + mustJSON(t, script) + `}`
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

const wordCountScript = `
	lines = load 'dfs://words.txt';
	words = flatmap lines using split;
	counts = reduceby words key wordOf using sum;
	collect counts;
`

func TestRunEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec := post(t, s, "/v1/run", wordCountScript)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Platforms) == 0 {
		t.Fatal("no platforms reported")
	}
	counts := map[string]int64{}
	for _, raw := range resp.Sinks["counts"] {
		q, err := core.DecodeQuantum(raw)
		if err != nil {
			t.Fatal(err)
		}
		kv := q.(core.KV)
		counts[kv.Key.(string)] = kv.Value.(int64)
	}
	if counts["a"] != 3 || counts["b"] != 1 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec := post(t, s, "/v1/explain", wordCountScript)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp ExplainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Plan, "RheemPlan") || !strings.Contains(resp.ExecutionPlan, "ExecutionPlan") {
		t.Fatalf("explain payload incomplete: %+v", resp)
	}
}

func TestPlatformsAndHealth(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/platforms", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "streams") {
		t.Fatalf("platforms: %d %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d", rec.Code)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t)
	// Broken JSON.
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("broken json: %d", rec.Code)
	}
	// Empty script.
	rec = post(t, s, "/v1/run", "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty script: %d", rec.Code)
	}
	// Syntax error -> 422 with a message.
	rec = post(t, s, "/v1/run", "x = frobnicate y;")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad script: %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("no error payload: %s", rec.Body)
	}
}

func TestTruncation(t *testing.T) {
	s := newTestServer(t)
	s.MaxResultQuanta = 2
	rec := post(t, s, "/v1/run", wordCountScript)
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Sinks["counts"]) != 2 {
		t.Fatalf("truncation failed: %+v", resp)
	}
}
