// Package restapi exposes the system over HTTP — the REST interface of the
// paper's Section 5. Clients submit RheemLatin scripts; the server compiles
// them against its registered UDF library, optimizes, executes, and returns
// the sink contents (or the explained plan) as JSON.
//
//	POST /v1/run      {"script": "..."}            -> {"platforms": [...], "replans": n, "sinks": {...}}
//	POST /v1/explain  {"script": "..."}            -> {"plan": "...", "execution_plan": "..."}
//	GET  /v1/platforms                             -> {"platforms": [...]}
//	GET  /v1/health                                -> 200 ok
package restapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"rheem"
	"rheem/internal/core"
	"rheem/latin"
)

// Server wires a Context and a UDF registry into an http.Handler.
type Server struct {
	Ctx  *rheem.Context
	UDFs *latin.Registry
	// MaxResultQuanta truncates sink payloads in responses (default 10000).
	MaxResultQuanta int

	mux *http.ServeMux
}

// New creates a server around the given context and UDF library.
func New(ctx *rheem.Context, udfs *latin.Registry) *Server {
	s := &Server{Ctx: ctx, UDFs: udfs, MaxResultQuanta: 10000}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/platforms", s.handlePlatforms)
	s.mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type scriptRequest struct {
	Script string `json:"script"`
}

// RunResponse is the /v1/run payload.
type RunResponse struct {
	Platforms []string                     `json:"platforms"`
	Replans   int                          `json:"replans"`
	Sinks     map[string][]json.RawMessage `json:"sinks"`
	Truncated bool                         `json:"truncated,omitempty"`
}

// ExplainResponse is the /v1/explain payload.
type ExplainResponse struct {
	Plan          string `json:"plan"`
	ExecutionPlan string `json:"execution_plan"`
}

func (s *Server) compile(w http.ResponseWriter, r *http.Request) (*latin.Compiled, bool) {
	var req scriptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	if req.Script == "" {
		httpError(w, http.StatusBadRequest, "empty script")
		return nil, false
	}
	compiled, err := latin.Compile(req.Script, s.UDFs)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "compile: %v", err)
		return nil, false
	}
	return compiled, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	compiled, ok := s.compile(w, r)
	if !ok {
		return
	}
	res, err := s.Ctx.Execute(compiled.Plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	resp := RunResponse{
		Platforms: res.Platforms(),
		Replans:   res.Replans(),
		Sinks:     map[string][]json.RawMessage{},
	}
	limit := s.MaxResultQuanta
	if limit <= 0 {
		limit = 10000
	}
	for name, sink := range compiled.Sinks {
		data, err := res.CollectFrom(sink)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "collect %s: %v", name, err)
			return
		}
		if len(data) > limit {
			data = data[:limit]
			resp.Truncated = true
		}
		encoded := make([]json.RawMessage, len(data))
		for i, q := range data {
			raw, err := core.EncodeQuantum(q)
			if err != nil {
				httpError(w, http.StatusInternalServerError, "encode result: %v", err)
				return
			}
			encoded[i] = raw
		}
		resp.Sinks[name] = encoded
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	compiled, ok := s.compile(w, r)
	if !ok {
		return
	}
	ep, err := s.Ctx.Optimize(compiled.Plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "optimize: %v", err)
		return
	}
	writeJSON(w, ExplainResponse{Plan: compiled.Plan.String(), ExecutionPlan: ep.String()})
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string][]string{"platforms": s.Ctx.Registry.Mappings.Platforms()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
