// Package restapi exposes the system over HTTP — the REST interface of the
// paper's Section 5, grown into a small service layer. Clients submit
// RheemLatin scripts either synchronously (/v1/run) or as asynchronous jobs
// (/v1/jobs) managed by internal/jobs: a bounded queue with admission
// control (429 when saturated), a worker pool, per-job cancellation, and a
// TTL-evicting result store. System-wide telemetry is exposed in the
// Prometheus text format.
//
//	POST   /v1/run             {"script": "..."}  -> {"platforms": [...], "replans": n, "sinks": {...}}
//	POST   /v1/explain         {"script": "..."}  -> {"plan": "...", "execution_plan": "..."}
//	POST   /v1/jobs            {"script": "..."}  -> 202 {"id": "...", "state": "queued"}
//	GET    /v1/jobs/{id}                          -> status + timestamps (+ monitor snapshot when finished)
//	GET    /v1/jobs/{id}/result [?sink=name]      -> the run payload of a succeeded job
//	GET    /v1/jobs/{id}/trace  [?format=chrome]  -> the job's span tree (native or Chrome trace_event JSON)
//	GET    /v1/jobs/{id}/profile                  -> per-stage resource profile (observed vs. estimated cost)
//	DELETE /v1/jobs/{id}                          -> cancel a queued or running job
//	GET    /v1/cache/stats     [?details=true]    -> result-cache counters (+ per-entry details)
//	DELETE /v1/cache           [?source=name]     -> clear the cache (or invalidate one source dataset)
//	DELETE /v1/cache/{fp}                         -> drop one cached entry by fingerprint
//	GET    /v1/metrics         [?format=json]     -> Prometheus text exposition (or structured JSON)
//	GET    /v1/platforms                          -> {"platforms": [...]}
//	GET    /v1/health                             -> {"status": "ok", "uptime_seconds": ..., "role": ...}
//	GET    /v1/internal/trace/{id}                -> a job's native span tree, for peer-side trace stitching
//
// With a cluster node attached (Options.Cluster), the fleet's endpoints are
// mounted too:
//
//	GET    /v1/cluster                            -> membership states + ring size
//	GET    /v1/cluster/metrics [?format=json]     -> fleet-merged metrics (counters summed, gauges per-peer)
//	GET    /v1/cluster/overview                   -> per-peer health/queue/cache/runtime snapshot
//	POST   /v1/internal/cluster/heartbeat         -> peer gossip (membership + cache versions)
//	GET    /v1/internal/cache/{fp}                -> stream one cache entry to a peer (binary framed)
//	PUT    /v1/internal/cache/{fp}                -> accept a peer's write-through
//
// With distributed stage execution on top (Options.ClusterExec), the
// fragment-execution endpoints are mounted as well:
//
//	POST   /v1/internal/exec/stage                -> execute a shipped plan fragment (internal/distexec)
//	GET    /v1/internal/exec/shuffle [?path=...]  -> stream a shuffle file to the fetching peer
//	DELETE /v1/internal/exec/job/{id}             -> drop a finished run's shuffle files
//
// Every response carries an X-Rheem-Request-Id, echoed in the debug-level
// access log; routed submissions additionally carry X-Rheem-Served-By.
package restapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rheem"
	"rheem/internal/cluster"
	"rheem/internal/core"
	"rheem/internal/distexec"
	"rheem/internal/jobs"
	"rheem/internal/monitor"
	"rheem/internal/telemetry"
	"rheem/internal/trace"
	"rheem/internal/xlog"
	"rheem/latin"
)

// Options configure a Server beyond its defaults.
type Options struct {
	// Jobs configure the async job manager (queue depth, workers, result
	// TTL, retries...). Jobs.Metrics defaults to the context's registry.
	Jobs jobs.Options
	// MaxBodyBytes caps request bodies (default 1 MiB); larger scripts get
	// a 413 instead of being decoded unbounded.
	MaxBodyBytes int64
	// MaxResultQuanta truncates sink payloads in responses (default 10000).
	MaxResultQuanta int
	// TraceCapacity bounds the per-job trace store (LRU, default 256).
	TraceCapacity int
	// Log receives server and job lifecycle events; nil disables logging.
	// Jobs.Log defaults to it.
	Log *xlog.Logger
	// Cluster joins this server to a peer fleet: the heartbeat, internal
	// cache-transfer, and cluster-status endpoints are mounted when set.
	Cluster *cluster.Node
	// ClusterRoute proxies job submissions to their plan fingerprint's ring
	// owner for cache affinity (ignored without Cluster).
	ClusterRoute bool
	// ClusterExec enables distributed stage execution: independent stages of
	// each wave are shipped to alive ring peers as plan fragments, and this
	// server accepts fragments from peers (ignored without Cluster).
	ClusterExec bool
	// ClusterExecMinCostMs keeps stages whose estimated cost sums below this
	// floor local — cheap stages never pay a network round-trip.
	ClusterExecMinCostMs float64
	// ScrapeTimeout bounds each per-peer fetch made by the fleet aggregation
	// endpoints (/v1/cluster/metrics, /v1/cluster/overview) and by trace
	// stitching. Defaults to the cluster's fetch timeout, else 2s.
	ScrapeTimeout time.Duration
}

// Server wires a Context, a UDF registry, and a job manager into an
// http.Handler.
type Server struct {
	Ctx  *rheem.Context
	UDFs *latin.Registry
	Jobs *jobs.Manager
	// Traces retains each submitted job's span tree (bounded LRU).
	Traces *trace.Store
	// Log receives request/lifecycle events; nil disables logging.
	Log *xlog.Logger
	// MaxResultQuanta truncates sink payloads in responses (default 10000).
	MaxResultQuanta int
	// MaxBodyBytes caps request bodies; <= 0 falls back to 1 MiB.
	MaxBodyBytes int64
	// Cluster is this server's fleet membership (nil when single-node).
	Cluster *cluster.Node
	// ClusterRoute enables owner-affinity job routing (see cluster.go).
	ClusterRoute bool
	// Distexec is the distributed stage scheduler (nil unless ClusterExec).
	Distexec *distexec.Scheduler
	// ScrapeTimeout bounds per-peer fetches of the fleet endpoints.
	ScrapeTimeout time.Duration

	started time.Time
	mux     *http.ServeMux
	mRouted *telemetry.Counter
}

// New creates a server with default options.
func New(ctx *rheem.Context, udfs *latin.Registry) *Server {
	return NewWithOptions(ctx, udfs, Options{})
}

// NewWithOptions creates a server around the given context and UDF library,
// starting its job manager.
func NewWithOptions(ctx *rheem.Context, udfs *latin.Registry, opts Options) *Server {
	if opts.Jobs.Metrics == nil {
		opts.Jobs.Metrics = ctx.Metrics
	}
	if opts.Jobs.Log == nil {
		opts.Jobs.Log = opts.Log.With("component", "jobs")
	}
	if opts.MaxResultQuanta <= 0 {
		opts.MaxResultQuanta = 10000
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		Ctx:             ctx,
		UDFs:            udfs,
		Jobs:            jobs.New(opts.Jobs),
		Traces:          trace.NewStore(opts.TraceCapacity),
		Log:             opts.Log,
		MaxResultQuanta: opts.MaxResultQuanta,
		MaxBodyBytes:    opts.MaxBodyBytes,
		ScrapeTimeout:   opts.ScrapeTimeout,
		started:         time.Now(),
	}
	trace.RegisterMetricsHelp(ctx.Metrics)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleJobProfile)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheClear)
	s.mux.HandleFunc("DELETE /v1/cache/{fp}", s.handleCacheDelete)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/platforms", s.handlePlatforms)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/internal/trace/{id}", s.handleInternalTrace)
	if opts.Cluster != nil {
		s.Cluster = opts.Cluster
		s.ClusterRoute = opts.ClusterRoute
		ctx.Metrics.Help("rheem_cluster_routed_requests_total",
			"Job submissions proxied to their fingerprint's ring owner.")
		s.mRouted = ctx.Metrics.Counter("rheem_cluster_routed_requests_total")
		if opts.ClusterExec {
			s.Distexec = distexec.New(distexec.Options{
				Node:      opts.Cluster,
				DFS:       ctx.DFS,
				Registry:  ctx.Registry,
				Metrics:   ctx.Metrics,
				Log:       opts.Log.With("component", "distexec"),
				Traces:    s.Traces,
				MinCostMs: opts.ClusterExecMinCostMs,
			})
			ctx.SetRemoteRunner(s.Distexec)
		}
		s.mountCluster(opts.Cluster)
	}
	return s
}

// Close drains the job manager: admission stops immediately, queued and
// running jobs get until ctx expires, and an error reports abandoned jobs.
func (s *Server) Close(ctx context.Context) error { return s.Jobs.Close(ctx) }

// RequestIDHeader carries the per-request id every response is stamped
// with; the same id keys the debug-level access log line.
const RequestIDHeader = "X-Rheem-Request-Id"

// ServeHTTP implements http.Handler: it stamps a request id on the
// response and, at debug level, emits one access-log line per request with
// method, path, status, duration, and — for proxied submissions — the peer
// that served it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := newRequestID()
	w.Header().Set(RequestIDHeader, reqID)
	if !s.Log.Enabled(xlog.LevelDebug) {
		s.mux.ServeHTTP(w, r)
		return
	}
	rec := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	kv := []any{
		"request_id", reqID,
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.code(),
		"duration_ms", float64(time.Since(start)) / float64(time.Millisecond),
	}
	if by := rec.Header().Get(ServedByHeader); by != "" {
		kv = append(kv, "served_by", by)
	}
	s.Log.Debug("http request", kv...)
}

// newRequestID mints a 12-hex-digit random request id ("-" if the entropy
// source fails; ids are diagnostics, not security).
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "-"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) code() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

type scriptRequest struct {
	Script string `json:"script"`
}

// RunResponse is the /v1/run payload (and a succeeded job's result).
type RunResponse struct {
	Platforms []string                     `json:"platforms"`
	Replans   int                          `json:"replans"`
	Sinks     map[string][]json.RawMessage `json:"sinks"`
	Truncated bool                         `json:"truncated,omitempty"`
}

// ExplainResponse is the /v1/explain payload.
type ExplainResponse struct {
	Plan          string `json:"plan"`
	ExecutionPlan string `json:"execution_plan"`
}

// SubmitResponse acknowledges an async submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// JobStatusResponse is the /v1/jobs/{id} payload.
type JobStatusResponse struct {
	ID          string            `json:"id"`
	State       string            `json:"state"`
	SubmittedAt time.Time         `json:"submitted_at"`
	StartedAt   *time.Time        `json:"started_at,omitempty"`
	FinishedAt  *time.Time        `json:"finished_at,omitempty"`
	Attempts    int               `json:"attempts"`
	Error       string            `json:"error,omitempty"`
	Monitor     *monitor.Snapshot `json:"monitor,omitempty"`
}

// jobOutcome is the value a job's runner stores in the result store.
type jobOutcome struct {
	resp    RunResponse
	snap    monitor.Snapshot
	profile *rheem.Profile
}

// compile decodes and compiles a script request, returning the raw body
// too so cluster routing can replay it to a peer verbatim.
func (s *Server) compile(w http.ResponseWriter, r *http.Request) (*latin.Compiled, []byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return nil, nil, false
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	var req scriptRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	if req.Script == "" {
		httpError(w, http.StatusBadRequest, "empty script")
		return nil, nil, false
	}
	compiled, err := latin.Compile(req.Script, s.UDFs)
	if err != nil {
		var unknownSink *latin.UnknownSinkError
		if errors.As(err, &unknownSink) {
			// The script stores/collects a dataset it never defined — a
			// malformed request, not a server failure.
			httpError(w, http.StatusBadRequest, "compile: %v", err)
			return nil, nil, false
		}
		httpError(w, http.StatusUnprocessableEntity, "compile: %v", err)
		return nil, nil, false
	}
	return compiled, raw, true
}

// runner builds the job body: execute the precompiled plan under the job's
// context and render the response payload plus the monitor snapshot.
func (s *Server) runner(compiled *latin.Compiled) jobs.Runner {
	return func(ctx context.Context) (any, error) {
		res, err := s.Ctx.ExecuteCtx(ctx, compiled.Plan)
		if err != nil {
			return nil, err
		}
		resp, err := s.renderRun(res, compiled)
		if err != nil {
			return nil, err
		}
		return &jobOutcome{resp: resp, snap: res.Monitor().Snapshot(), profile: res.Profile()}, nil
	}
}

func (s *Server) renderRun(res *rheem.Result, compiled *latin.Compiled) (RunResponse, error) {
	resp := RunResponse{
		Platforms: res.Platforms(),
		Replans:   res.Replans(),
		Sinks:     map[string][]json.RawMessage{},
	}
	limit := s.MaxResultQuanta
	if limit <= 0 {
		limit = 10000
	}
	for name, sink := range compiled.Sinks {
		data, err := res.CollectFrom(sink)
		if err != nil {
			return resp, fmt.Errorf("collect %s: %w", name, err)
		}
		if len(data) > limit {
			data = data[:limit]
			resp.Truncated = true
		}
		encoded := make([]json.RawMessage, len(data))
		for i, q := range data {
			raw, err := core.EncodeQuantum(q)
			if err != nil {
				return resp, fmt.Errorf("encode result: %w", err)
			}
			encoded[i] = raw
		}
		resp.Sinks[name] = encoded
	}
	return resp, nil
}

// submit enqueues a traced job and retains its span tree for the trace
// endpoint. The tracer is created before submission so the queue-wait span
// covers the whole admission; evicted traces simply 404. A request arriving
// with trace-propagation headers (a routed submission) links this tree
// under the origin's span, so the origin can graft it into one distributed
// trace.
func (s *Server) submit(compiled *latin.Compiled, r *http.Request) (string, error) {
	tr := trace.New(trace.KindJob, "job:"+compiled.Plan.Name)
	tr.Metrics = s.Ctx.Metrics
	if tid, parent, ok := trace.Extract(r.Header); ok {
		tr.SetRemoteParent(tid, parent)
		if from := r.Header.Get(RoutedFromHeader); from != "" {
			tr.Root().SetAttr("routed_from", from)
		}
	}
	id, err := s.Jobs.Submit(s.runner(compiled), jobs.WithTracer(tr))
	if err != nil {
		return "", err
	}
	s.Traces.Put(id, tr)
	return id, nil
}

// handleRun is the synchronous convenience: it submits through the same
// job manager (sharing admission control and telemetry) and waits inline.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	compiled, raw, ok := s.compile(w, r)
	if !ok {
		return
	}
	if s.maybeProxy(w, r, compiled, raw) {
		return
	}
	id, err := s.submit(compiled, r)
	if err != nil {
		s.submitError(w, err)
		return
	}
	st, err := s.Jobs.Wait(r.Context(), id)
	if err != nil {
		// The client went away; stop burning workers on the abandoned run.
		_ = s.Jobs.Cancel(id)
		httpError(w, http.StatusServiceUnavailable, "wait: %v", err)
		return
	}
	switch st.State {
	case jobs.StateSucceeded:
		outcome, err := s.Jobs.Result(id)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "result: %v", err)
			return
		}
		writeJSON(w, outcome.(*jobOutcome).resp)
	case jobs.StateCancelled:
		httpError(w, http.StatusServiceUnavailable, "execution cancelled")
	default:
		httpError(w, http.StatusInternalServerError, "execute: %s", st.Err)
	}
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	compiled, raw, ok := s.compile(w, r)
	if !ok {
		return
	}
	if s.maybeProxy(w, r, compiled, raw) {
		return
	}
	id, err := s.submit(compiled, r)
	if err != nil {
		s.submitError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SubmitResponse{ID: id, State: string(jobs.StateQueued)})
}

func admissionStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// RetryAfterSeconds is the back-off hint sent with 429 admission responses.
// Queue pressure drains on job timescales, not packet timescales, so the
// hint is a flat second rather than something cleverer.
const RetryAfterSeconds = "1"

// submitError renders an admission failure. 429 responses carry a
// Retry-After header so well-behaved clients — and peer-proxied
// submissions, whose proxy copies response headers through — back off
// instead of hammering a saturated queue.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	code := admissionStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", RetryAfterSeconds)
	}
	httpError(w, code, "submit: %v", err)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Jobs.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "job %s: %v", id, err)
		return
	}
	resp := JobStatusResponse{
		ID:          st.ID,
		State:       string(st.State),
		SubmittedAt: st.SubmittedAt,
		Attempts:    st.Attempts,
		Error:       st.Err,
	}
	if !st.StartedAt.IsZero() {
		t := st.StartedAt
		resp.StartedAt = &t
	}
	if !st.FinishedAt.IsZero() {
		t := st.FinishedAt
		resp.FinishedAt = &t
	}
	if st.State == jobs.StateSucceeded {
		if outcome, err := s.Jobs.Result(id); err == nil {
			snap := outcome.(*jobOutcome).snap
			resp.Monitor = &snap
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	outcome, err := s.Jobs.Result(id)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "job %s: %v", id, err)
		return
	case errors.Is(err, jobs.ErrNotFinished):
		httpError(w, http.StatusConflict, "job %s is not finished", id)
		return
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusConflict, "job %s was cancelled", id)
		return
	default:
		httpError(w, http.StatusInternalServerError, "job %s failed: %v", id, err)
		return
	}
	resp := outcome.(*jobOutcome).resp
	if sink := r.URL.Query().Get("sink"); sink != "" {
		data, ok := resp.Sinks[sink]
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown sink %q (have: %s)", sink, strings.Join(sinkNames(resp.Sinks), ", "))
			return
		}
		resp = RunResponse{Platforms: resp.Platforms, Replans: resp.Replans, Truncated: resp.Truncated,
			Sinks: map[string][]json.RawMessage{sink: data}}
	}
	writeJSON(w, resp)
}

func sinkNames(sinks map[string][]json.RawMessage) []string {
	out := make([]string, 0, len(sinks))
	for name := range sinks {
		out = append(out, name)
	}
	return out
}

// handleJobTrace serves a job's span tree: the native nested-span JSON by
// default, or the Chrome trace_event format (loadable in chrome://tracing
// and Perfetto) with ?format=chrome. Works for in-flight jobs too — open
// spans are reported as unfinished with their duration so far. Trees of
// routed jobs are stitched first: each proxy span's remote subtree is
// fetched from the serving peer and grafted in, so one request returns the
// whole distributed tree (degrading to the local tree, annotated with
// stitch_error, when the peer is unreachable).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.Traces.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no trace for job %s (unknown or evicted)", id)
		return
	}
	snap := tr.Snapshot()
	s.stitchRemote(r.Context(), snap)
	switch format := r.URL.Query().Get("format"); format {
	case "", "native":
		writeJSON(w, snap)
	case "chrome":
		writeJSON(w, snap.ChromeTrace())
	default:
		httpError(w, http.StatusBadRequest, "unknown trace format %q (want native or chrome)", format)
	}
}

// handleJobProfile serves a succeeded job's resource profile — the
// EXPLAIN ANALYZE view pairing observed wall/CPU/alloc/bytes with the
// optimizer's estimates.
func (s *Server) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	outcome, err := s.Jobs.Result(id)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "job %s: %v", id, err)
		return
	case errors.Is(err, jobs.ErrNotFinished):
		httpError(w, http.StatusConflict, "job %s is not finished", id)
		return
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusConflict, "job %s was cancelled", id)
		return
	default:
		httpError(w, http.StatusInternalServerError, "job %s failed: %v", id, err)
		return
	}
	profile := outcome.(*jobOutcome).profile
	if profile == nil {
		httpError(w, http.StatusNotFound, "no profile for job %s", id)
		return
	}
	writeJSON(w, profile)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.Jobs.Cancel(id); {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitResponse{ID: id, State: string(jobs.StateCancelled)})
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "job %s: %v", id, err)
	case errors.Is(err, jobs.ErrAlreadyFinished):
		httpError(w, http.StatusConflict, "job %s: %v", id, err)
	default:
		httpError(w, http.StatusInternalServerError, "cancel %s: %v", id, err)
	}
}

// handleCacheStats reports the result cache's counters; ?details=true adds
// per-entry fingerprints, sizes, and hit counts (sorted by eviction
// survivorship). Contexts without a configured cache get a 404.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if s.Ctx.Cache == nil {
		httpError(w, http.StatusNotFound, "result cache is not enabled")
		return
	}
	details := r.URL.Query().Get("details") == "true"
	writeJSON(w, s.Ctx.Cache.Stats(details))
}

// handleCacheClear drops every cached entry, or — with ?source=name —
// invalidates one source dataset: its version is bumped (changing all
// future fingerprints that read it) and the entries reading it are dropped.
func (s *Server) handleCacheClear(w http.ResponseWriter, r *http.Request) {
	if s.Ctx.Cache == nil {
		httpError(w, http.StatusNotFound, "result cache is not enabled")
		return
	}
	if source := r.URL.Query().Get("source"); source != "" {
		n := s.Ctx.Cache.InvalidateSource(source)
		writeJSON(w, map[string]any{"invalidated_source": source, "dropped": n})
		return
	}
	writeJSON(w, map[string]any{"dropped": s.Ctx.Cache.Clear()})
}

func (s *Server) handleCacheDelete(w http.ResponseWriter, r *http.Request) {
	if s.Ctx.Cache == nil {
		httpError(w, http.StatusNotFound, "result cache is not enabled")
		return
	}
	fp := r.PathValue("fp")
	if !s.Ctx.Cache.Delete(fp) {
		httpError(w, http.StatusNotFound, "no cache entry %s", fp)
		return
	}
	writeJSON(w, map[string]any{"deleted": fp})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Ctx.Metrics.WriteProm(w)
	case "json":
		writeJSON(w, s.Ctx.Metrics.Snapshot())
	default:
		httpError(w, http.StatusBadRequest, "unknown metrics format %q (want prom or json)", format)
	}
}

// HealthResponse is the /v1/health payload. Role is "single" without a
// cluster, "router" when this peer proxies submissions to ring owners, and
// "peer" otherwise.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Role          string  `json:"role"`
	Advertise     string  `json:"advertise,omitempty"`
	PeersAlive    int     `json:"peers_alive,omitempty"`
}

func (s *Server) role() string {
	switch {
	case s.Cluster == nil:
		return "single"
	case s.ClusterRoute:
		return "router"
	default:
		return "peer"
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Role:          s.role(),
	}
	if s.Cluster != nil {
		resp.Advertise = s.Cluster.Self()
		resp.PeersAlive = len(s.Cluster.AliveRemotes()) + 1
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	compiled, _, ok := s.compile(w, r)
	if !ok {
		return
	}
	ep, err := s.Ctx.Optimize(compiled.Plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "optimize: %v", err)
		return
	}
	writeJSON(w, ExplainResponse{Plan: compiled.Plan.String(), ExecutionPlan: ep.String()})
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string][]string{"platforms": s.Ctx.Registry.Mappings.Platforms()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
