package restapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rheem/internal/cluster"
	"rheem/internal/telemetry"
	"rheem/internal/trace"
)

// The fleet observability plane: per-peer facts are scraped concurrently
// (bounded by ScrapeTimeout per peer) and merged into one answer, so any
// peer can describe the whole fleet. Dead peers degrade the answer, never
// fail it: metrics merge what is reachable and name the rest, and trace
// stitching falls back to the local tree with a stitch_error annotation.

// scrapeTimeout bounds one per-peer fetch.
func (s *Server) scrapeTimeout() time.Duration {
	if s.ScrapeTimeout > 0 {
		return s.ScrapeTimeout
	}
	if s.Cluster != nil && s.Cluster.FetchTimeout() > 0 {
		return s.Cluster.FetchTimeout()
	}
	return 2 * time.Second
}

// fetchPeerJSON GETs a peer endpoint and decodes its JSON payload.
func (s *Server) fetchPeerJSON(ctx context.Context, addr, path string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, s.scrapeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := proxyClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// handleInternalTrace serves a job's native span tree to a peer that is
// stitching a distributed trace. Unknown or evicted ids 404, which the
// origin treats as "render the local tree".
func (s *Server) handleInternalTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.Traces.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no trace for job %s (unknown or evicted)", id)
		return
	}
	writeJSON(w, tr.Snapshot())
}

// stitchRemote grafts remote execution subtrees into a snapshot: every
// span carrying remote_job + peer attrs (the proxy spans written by
// maybeProxy) gets the serving peer's tree fetched and attached beneath
// it, each grafted span tagged with a peer attr. Failures leave the local
// tree intact with a stitch_error annotation on the proxy span.
func (s *Server) stitchRemote(ctx context.Context, snap *trace.SpanJSON) {
	if s.Cluster == nil || snap == nil {
		return
	}
	for _, sp := range snap.FindWithAttr("remote_job") {
		peer, _ := sp.Attr("peer")
		remoteID, _ := sp.Attr("remote_job")
		if peer == "" || remoteID == "" {
			continue
		}
		var remote trace.SpanJSON
		if err := s.fetchPeerJSON(ctx, peer, "/v1/internal/trace/"+remoteID, &remote); err != nil {
			sp.Attrs = append(sp.Attrs, trace.Attr{Key: "stitch_error", Value: err.Error()})
			s.Log.Debug("trace stitch failed", "peer", peer, "job", remoteID, "error", err)
			continue
		}
		snap.Graft(sp.ID, &remote, peer)
	}
}

// ClusterMetricsResponse is the ?format=json payload of
// GET /v1/cluster/metrics.
type ClusterMetricsResponse struct {
	Peers       []string                   `json:"peers"`
	Unreachable []string                   `json:"unreachable,omitempty"`
	Families    []telemetry.FamilySnapshot `json:"families"`
}

// scrapePeers snapshots the local registry and scrapes every alive remote
// peer concurrently, one timeout each.
func (s *Server) scrapePeers(ctx context.Context) (snaps map[string]*telemetry.RegistrySnapshot, unreachable []string) {
	snaps = map[string]*telemetry.RegistrySnapshot{s.Cluster.Self(): s.Ctx.Metrics.Snapshot()}
	remotes := s.Cluster.AliveRemotes()
	type scrape struct {
		addr string
		snap *telemetry.RegistrySnapshot
		err  error
	}
	ch := make(chan scrape, len(remotes))
	for _, addr := range remotes {
		go func(addr string) {
			var snap telemetry.RegistrySnapshot
			err := s.fetchPeerJSON(ctx, addr, "/v1/metrics?format=json", &snap)
			ch <- scrape{addr: addr, snap: &snap, err: err}
		}(addr)
	}
	for range remotes {
		sc := <-ch
		if sc.err != nil {
			unreachable = append(unreachable, sc.addr)
			s.Log.Warn("peer metrics scrape failed", "peer", sc.addr, "error", sc.err)
			continue
		}
		snaps[sc.addr] = sc.snap
	}
	sort.Strings(unreachable)
	return snaps, unreachable
}

// handleClusterMetrics merges the fleet's registries into one exposition:
// counters and histograms summed across peers, gauges per-peer with a peer
// label (see telemetry.MergeSnapshots). Unreachable peers are reported in
// the X-Rheem-Scrape-Errors header (prom) or the unreachable field (json).
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	snaps, unreachable := s.scrapePeers(r.Context())
	merged := telemetry.MergeSnapshots(snaps)
	switch format := r.URL.Query().Get("format"); format {
	case "", "prom":
		if len(unreachable) > 0 {
			w.Header().Set("X-Rheem-Scrape-Errors", strings.Join(unreachable, ","))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = merged.WriteProm(w)
	case "json":
		peers := make([]string, 0, len(snaps))
		for addr := range snaps {
			peers = append(peers, addr)
		}
		sort.Strings(peers)
		writeJSON(w, ClusterMetricsResponse{Peers: peers, Unreachable: unreachable, Families: merged.Families})
	default:
		httpError(w, http.StatusBadRequest, "unknown metrics format %q (want prom or json)", format)
	}
}

// PeerOverview is one peer's row in GET /v1/cluster/overview.
type PeerOverview struct {
	Addr     string    `json:"addr"`
	Self     bool      `json:"self,omitempty"`
	State    string    `json:"state"`
	LastSeen time.Time `json:"last_seen"`
	// Error reports a failed scrape of an alive peer; its gauge fields are
	// then zero.
	Error         string  `json:"error,omitempty"`
	Role          string  `json:"role,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`

	QueueDepth      float64 `json:"queue_depth"`
	JobsInFlight    float64 `json:"jobs_in_flight"`
	CacheBytes      float64 `json:"cache_bytes"`
	CacheEntries    float64 `json:"cache_entries"`
	CacheSpillBytes float64 `json:"cache_spill_bytes"`
	CacheSpillItems float64 `json:"cache_spill_entries"`
	Goroutines      float64 `json:"goroutines"`
	HeapAllocBytes  float64 `json:"heap_alloc_bytes"`
}

func (po *PeerOverview) fill(snap *telemetry.RegistrySnapshot) {
	po.QueueDepth, _ = snap.GaugeValue("rheem_jobs_queue_depth")
	po.JobsInFlight, _ = snap.GaugeValue("rheem_jobs_in_flight")
	po.CacheBytes, _ = snap.GaugeValue("rheem_cache_bytes")
	po.CacheEntries, _ = snap.GaugeValue("rheem_cache_entries")
	po.CacheSpillBytes, _ = snap.GaugeValue("rheem_cache_spill_bytes")
	po.CacheSpillItems, _ = snap.GaugeValue("rheem_cache_spill_entries")
	po.Goroutines, _ = snap.GaugeValue("rheem_go_goroutines")
	po.HeapAllocBytes, _ = snap.GaugeValue("rheem_go_heap_alloc_bytes")
}

// ClusterOverviewResponse is the GET /v1/cluster/overview payload.
type ClusterOverviewResponse struct {
	Self  string         `json:"self"`
	Peers []PeerOverview `json:"peers"`
}

// handleClusterOverview returns one JSON snapshot of per-peer health:
// membership state plus each alive peer's queue depth, cache tiers, and Go
// runtime gauges (scraped concurrently; suspect/dead peers keep their
// membership row with zeroed gauges).
func (s *Server) handleClusterOverview(w http.ResponseWriter, r *http.Request) {
	members := s.Cluster.Members()
	entries := make([]PeerOverview, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		entries[i] = PeerOverview{Addr: m.Addr, State: m.State, LastSeen: m.LastSeen}
		if m.Addr == s.Cluster.Self() {
			entries[i].Self = true
			entries[i].Role = s.role()
			entries[i].UptimeSeconds = time.Since(s.started).Seconds()
			entries[i].fill(s.Ctx.Metrics.Snapshot())
			continue
		}
		if m.State != cluster.StateAlive {
			continue
		}
		wg.Add(1)
		go func(e *PeerOverview, addr string) {
			defer wg.Done()
			var snap telemetry.RegistrySnapshot
			if err := s.fetchPeerJSON(r.Context(), addr, "/v1/metrics?format=json", &snap); err != nil {
				e.Error = err.Error()
				return
			}
			e.fill(&snap)
			var h HealthResponse
			if err := s.fetchPeerJSON(r.Context(), addr, "/v1/health", &h); err == nil {
				e.Role = h.Role
				e.UptimeSeconds = h.UptimeSeconds
			}
		}(&entries[i], m.Addr)
	}
	wg.Wait()
	writeJSON(w, ClusterOverviewResponse{Self: s.Cluster.Self(), Peers: entries})
}
