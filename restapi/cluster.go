package restapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"

	"rheem/internal/cluster"
	"rheem/internal/core"
	"rheem/internal/trace"
	"rheem/latin"
)

// Job routing. With -cluster-route, a job submission is proxied to the ring
// owner of its plan fingerprint, so repeated traffic for one plan lands on
// the peer whose cache (and single-flight table) already knows it — the
// affinity tier above the fetch-on-miss remote cache. The owner serves the
// request as its own: results, traces, and job ids live on the owner, and
// the response's X-Rheem-Served-By header tells the client where to poll.

// RoutedFromHeader marks a peer-proxied submission; its presence stops a
// second proxy hop (membership disagreement between two peers could
// otherwise bounce a request until one of them converges).
const RoutedFromHeader = "X-Rheem-Routed-From"

// ServedByHeader names the peer that actually executed a routed request.
const ServedByHeader = "X-Rheem-Served-By"

// proxyClient is deliberately timeout-free: a routed /v1/run lasts as long
// as the job, and the inbound request's context already bounds it.
var proxyClient = &http.Client{}

// routeFingerprint picks the plan's routing key: the smallest sink-subtree
// fingerprint. Empty when the plan has no fingerprintable sink (loops,
// unnameable UDFs) — such jobs always run locally.
func (s *Server) routeFingerprint(compiled *latin.Compiled) string {
	sv := func(string) uint64 { return 0 }
	if s.Ctx.Cache != nil {
		sv = s.Ctx.Cache.SourceVersion
	}
	fps := core.FingerprintPlan(compiled.Plan, core.FingerprintOptions{SourceVersion: sv})
	best := ""
	for _, sink := range compiled.Plan.Sinks() {
		if info := fps[sink]; info != nil && (best == "" || info.Hash < best) {
			best = info.Hash
		}
	}
	return best
}

// maybeProxy forwards a submission to its fingerprint's ring owner,
// reporting whether the response has been written. Requests that are
// already routed, have no routable fingerprint, or are owned by this peer
// run locally; so does anything whose proxy attempt fails — a dead owner
// costs one failed hop, never the job.
func (s *Server) maybeProxy(w http.ResponseWriter, r *http.Request, compiled *latin.Compiled, body []byte) bool {
	if s.Cluster == nil || !s.ClusterRoute || r.Header.Get(RoutedFromHeader) != "" {
		return false
	}
	fp := s.routeFingerprint(compiled)
	if fp == "" {
		return false
	}
	owner := s.Cluster.Owner(fp)
	if owner == "" || owner == s.Cluster.Self() {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RoutedFromHeader, s.Cluster.Self())
	// Async submissions get an origin-side trace: a root job span with one
	// proxy child covering the hop. The proxied request carries the proxy
	// span's context, so the owner links its own tree under it, and the
	// response's job id keys this trace locally — GET /v1/jobs/{id}/trace on
	// this peer then fetches and grafts the remote subtree (fleet.go).
	// Synchronous /v1/run responses carry no job id to key a trace on, so
	// they proxy untraced.
	var tr *trace.Tracer
	var proxySp *trace.Span
	if r.URL.Path == "/v1/jobs" {
		tr = trace.New(trace.KindJob, "job:"+compiled.Plan.Name)
		tr.Metrics = s.Ctx.Metrics
		proxySp = tr.Root().Start(trace.KindProxy, "proxy:"+owner)
		proxySp.SetAttr("peer", owner)
		trace.Inject(req.Header, proxySp)
	}
	resp, err := proxyClient.Do(req)
	if err != nil {
		s.Log.Warn("cluster route failed, serving locally", "owner", owner, "error", err)
		return false
	}
	defer resp.Body.Close()
	for key, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(key, v)
		}
	}
	w.Header().Set(ServedByHeader, owner)
	w.WriteHeader(resp.StatusCode)
	if tr != nil {
		s.relayTraced(w, resp, tr, proxySp)
	} else {
		_, _ = io.Copy(w, resp.Body)
	}
	s.mRouted.Inc()
	s.Log.Debug("routed submission", "owner", owner, "fp", fp[:12], "path", r.URL.Path)
	return true
}

// relayTraced copies a proxied submission response through while capturing
// the owner's job id, then retains the origin-side trace under that id.
// The body is read in full first — it is a SubmitResponse, not a result
// payload. Non-202 responses (e.g. a saturated owner's 429) relay without
// retaining a trace: no job exists to stitch against.
func (s *Server) relayTraced(w http.ResponseWriter, resp *http.Response, tr *trace.Tracer, proxySp *trace.Span) {
	body, err := io.ReadAll(resp.Body)
	_, _ = w.Write(body)
	proxySp.SetAttr("status", resp.Status)
	proxySp.End()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return
	}
	var sub SubmitResponse
	if json.Unmarshal(body, &sub) != nil || sub.ID == "" {
		return
	}
	proxySp.SetAttr("remote_job", sub.ID)
	root := tr.Root()
	root.SetAttr("routed", "true")
	root.SetAttr("job_id", sub.ID)
	root.End()
	s.Traces.Put(sub.ID, tr)
}

// mountCluster wires the fleet's internal endpoints into the mux.
func (s *Server) mountCluster(node *cluster.Node) {
	s.mux.HandleFunc("POST /v1/internal/cluster/heartbeat", node.HandleHeartbeat)
	s.mux.HandleFunc("GET /v1/internal/cache/{fp}", node.HandleCacheGet)
	s.mux.HandleFunc("PUT /v1/internal/cache/{fp}", node.HandleCachePut)
	s.mux.HandleFunc("GET /v1/cluster", node.HandleStatus)
	s.mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /v1/cluster/overview", s.handleClusterOverview)
	if s.Distexec != nil {
		// Distributed stage execution: peers ship plan fragments here, fetch
		// over-limit shuffle files by path, and GC a run's files when it ends.
		s.mux.HandleFunc("POST /v1/internal/exec/stage", s.Distexec.HandleExecStage)
		s.mux.HandleFunc("GET /v1/internal/exec/shuffle", s.Distexec.HandleExecShuffle)
		s.mux.HandleFunc("DELETE /v1/internal/exec/job/{id}", s.Distexec.HandleExecDelete)
	}
}
