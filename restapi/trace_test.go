package restapi

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"rheem/internal/jobs"
	"rheem/internal/trace"
)

func jobTrace(t *testing.T, s *Server, id, query string) *trace.SpanJSON {
	t.Helper()
	rec := get(s, "/v1/jobs/"+id+"/trace"+query)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace %s: %d %s", id, rec.Code, rec.Body)
	}
	var sj trace.SpanJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &sj); err != nil {
		t.Fatal(err)
	}
	return &sj
}

func TestJobTraceNativeFormat(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	close(release)
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateSucceeded)

	sj := jobTrace(t, s, sub.ID, "")
	if sj.Kind != trace.KindJob {
		t.Fatalf("root kind = %q, want %q", sj.Kind, trace.KindJob)
	}
	if sj.Unfinished {
		t.Fatal("root span of a finished job is still open")
	}
	if id, ok := sj.Attr("job_id"); !ok || id != sub.ID {
		t.Fatalf("root job_id attr = %q, %v", id, ok)
	}
	if state, _ := sj.Attr("state"); state != string(jobs.StateSucceeded) {
		t.Fatalf("root state attr = %q", state)
	}
	for _, kind := range []string{
		trace.KindQueueWait, trace.KindAttempt, trace.KindOptimize,
		trace.KindWave, trace.KindStage, trace.KindOperator,
	} {
		if sj.Find(kind) == nil {
			t.Fatalf("trace has no %s span", kind)
		}
	}
	// The gated script forces streams -> spark, so a channel conversion
	// (collection to an RDD-style channel) must appear in the tree.
	if sj.Find(trace.KindConversion) == nil {
		t.Fatal("trace has no channel-conversion span")
	}
	// Operator spans carry the optimizer's estimate against the observation.
	op := sj.Find(trace.KindOperator)
	if _, ok := op.Attr("observed_card"); !ok {
		t.Fatalf("operator span lacks observed_card: %+v", op)
	}
	if _, ok := op.Attr("estimated_card"); !ok {
		t.Fatalf("operator span lacks estimated_card: %+v", op)
	}
	if _, ok := op.Attr("mismatch_factor"); !ok {
		t.Fatalf("operator span lacks mismatch_factor: %+v", op)
	}
}

// within reports whether child's wall-clock interval is inside parent's,
// tolerating a small epsilon for duration rounding in the export.
func within(parent, child *trace.SpanJSON) bool {
	eps := time.Millisecond
	ps, pe := parent.WallClock()
	cs, ce := child.WallClock()
	return !cs.Before(ps.Add(-eps)) && !ce.After(pe.Add(eps))
}

func TestJobTraceChromeFormat(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	close(release)
	started := time.Now()
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateSucceeded)
	finished := time.Now()

	crec := get(s, "/v1/jobs/"+sub.ID+"/trace?format=chrome")
	if crec.Code != http.StatusOK {
		t.Fatalf("chrome trace: %d %s", crec.Code, crec.Body)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(crec.Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	byCat := map[string][]trace.ChromeEvent{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byCat[ev.Cat] = append(byCat[ev.Cat], ev)
	}
	for _, cat := range []string{trace.KindJob, trace.KindWave, trace.KindStage, trace.KindOperator} {
		if len(byCat[cat]) == 0 {
			t.Fatalf("chrome trace has no %s events (cats: %v)", cat, catNames(byCat))
		}
	}

	// Nesting acceptance: the span tree must encode containment, and the
	// chrome export's timestamps must reproduce it.
	sj := jobTrace(t, s, sub.ID, "")
	for _, wave := range sj.FindAll(trace.KindWave) {
		for _, stage := range wave.FindAll(trace.KindStage) {
			if !within(wave, stage) {
				t.Fatalf("stage %s not inside wave %s", stage.Name, wave.Name)
			}
			for _, op := range stage.FindAll(trace.KindOperator) {
				if !within(stage, op) {
					t.Fatalf("operator %s not inside stage %s", op.Name, stage.Name)
				}
			}
		}
	}
	// The job span's duration must fit the observed wall-clock window.
	job := byCat[trace.KindJob][0]
	wall := finished.Sub(started)
	if dur := time.Duration(job.Dur) * time.Microsecond; dur > wall+time.Second {
		t.Fatalf("job span %v exceeds wall clock %v", dur, wall)
	}
	if ts := time.UnixMicro(job.Ts); ts.Before(started.Add(-time.Second)) || ts.After(finished) {
		t.Fatalf("job span start %v outside [%v, %v]", ts, started, finished)
	}
	// Chrome nests by (tid, time containment): any two events sharing a
	// lane must be nested or disjoint, never partially overlapping.
	for i, a := range events {
		for _, b := range events[i+1:] {
			if a.Tid != b.Tid {
				continue
			}
			aEnd, bEnd := a.Ts+a.Dur, b.Ts+b.Dur
			disjoint := aEnd <= b.Ts || bEnd <= a.Ts
			nested := (a.Ts <= b.Ts && bEnd <= aEnd) || (b.Ts <= a.Ts && aEnd <= bEnd)
			if !disjoint && !nested {
				t.Fatalf("events %q and %q partially overlap on lane %d", a.Name, b.Name, a.Tid)
			}
		}
	}
}

func catNames(byCat map[string][]trace.ChromeEvent) []string {
	out := make([]string, 0, len(byCat))
	for cat := range byCat {
		out = append(out, cat)
	}
	return out
}

func TestJobTraceNotFoundAndBadFormat(t *testing.T) {
	// TraceCapacity 1: the second submission evicts the first job's trace.
	s, release := gatedServer(t, Options{
		Jobs:          jobs.Options{Workers: 1, QueueDepth: 4},
		TraceCapacity: 1,
	})
	close(release)

	if rec := get(s, "/v1/jobs/nope/trace"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job trace: %d %s", rec.Code, rec.Body)
	}

	var ids []string
	for i := 0; i < 2; i++ {
		rec := postScript(t, s, "/v1/jobs", gatedScript)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
			t.Fatal(err)
		}
		waitState(t, s, sub.ID, jobs.StateSucceeded)
		ids = append(ids, sub.ID)
	}
	if rec := get(s, "/v1/jobs/"+ids[0]+"/trace"); rec.Code != http.StatusNotFound {
		t.Fatalf("evicted trace: %d %s", rec.Code, rec.Body)
	}
	if rec := get(s, "/v1/jobs/"+ids[1]+"/trace"); rec.Code != http.StatusOK {
		t.Fatalf("retained trace: %d %s", rec.Code, rec.Body)
	}
	if rec := get(s, "/v1/jobs/"+ids[1]+"/trace?format=svg"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad format: %d %s", rec.Code, rec.Body)
	}
}

// TestJobTraceWhileRunning exercises the in-flight snapshot path: a gated
// job's trace is served with the root span flagged unfinished.
func TestJobTraceWhileRunning(t *testing.T) {
	s, release := gatedServer(t, Options{Jobs: jobs.Options{Workers: 1, QueueDepth: 4}})
	rec := postScript(t, s, "/v1/jobs", gatedScript)
	var sub SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sub.ID, jobs.StateRunning)
	sj := jobTrace(t, s, sub.ID, "")
	if !sj.Unfinished {
		t.Fatal("running job's root span not flagged unfinished")
	}
	close(release)
	waitState(t, s, sub.ID, jobs.StateSucceeded)
}
