package restapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"rheem/internal/distexec"
	"rheem/internal/jobs"
	"rheem/internal/telemetry"
	"rheem/internal/trace"
)

// fanoutScript is WordCount with a second collect sink, so the job carries
// more than one terminal stage for the scheduler to spread across the ring.
const fanoutScript = "lines = load 'dfs://words.txt'; " +
	"words = flatmap lines using split; " +
	"counts = reduceby words key wordOf using sum; " +
	"collect counts; collect words;"

// submitJob submits a script asynchronously to one fleet peer and waits for
// the job to succeed.
func submitJob(t *testing.T, addr, script string) string {
	t.Helper()
	resp, raw := wireReq(t, http.MethodPost, "http://"+addr+"/v1/jobs", scriptBody(t, script))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit on %s: %d %s", addr, resp.StatusCode, raw)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitFleetCond(t, "job "+sub.ID+" succeeded", func() bool {
		resp, raw := wireReq(t, http.MethodGet, "http://"+addr+"/v1/jobs/"+sub.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d %s", sub.ID, resp.StatusCode, raw)
		}
		var st JobStatusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == string(jobs.StateFailed) {
			t.Fatalf("job %s failed: %s", sub.ID, st.Error)
		}
		return st.State == string(jobs.StateSucceeded)
	})
	return sub.ID
}

// remoteSpans walks a stitched trace for dispatch spans of remote stages.
func remoteSpans(sj *trace.SpanJSON) []*trace.SpanJSON {
	if sj == nil {
		return nil
	}
	var out []*trace.SpanJSON
	if sj.Kind == trace.KindRemoteStage {
		if _, ok := sj.Attr("remote_job"); ok {
			out = append(out, sj)
		}
	}
	for _, c := range sj.Children {
		out = append(out, remoteSpans(c)...)
	}
	return out
}

// assertNoShuffleLeftovers waits for end-of-run GC to clear every peer's
// distexec/ namespace (the DELETE broadcast to peers is asynchronous only
// in the sense that the job's response races the last few round-trips).
func assertNoShuffleLeftovers(t *testing.T, peers []*fleetPeer) {
	t.Helper()
	waitFleetCond(t, "shuffle files garbage-collected", func() bool {
		for _, p := range peers {
			for _, f := range p.srv.Ctx.DFS.List() {
				if strings.HasPrefix(f, "distexec/") {
					return false
				}
			}
		}
		return true
	})
}

// TestClusterDistexecCrosscheck is the tentpole acceptance scenario: a
// 2-peer fleet with -cluster-exec runs a multi-stage job submitted to one
// peer, stages execute remotely on the other, the results match the
// single-node answer, the stitched trace attributes the remote work, the
// profile carries the peer's own resource figures, and no shuffle files
// survive the run.
func TestClusterDistexecCrosscheck(t *testing.T) {
	peers := startFleetCfg(t, 2, fleetConfig{exec: true})
	a, b := peers[0], peers[1]

	id := submitJob(t, a.addr, fanoutScript)

	// Results are exactly what a single node computes for words.txt.
	resp, raw := wireReq(t, http.MethodGet, "http://"+a.addr+"/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, raw)
	}
	var rr RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if counts := countsOf(t, rr); counts["a"] != 3 || counts["b"] != 1 || counts["c"] != 1 {
		t.Fatalf("distributed counts = %v, want a=3 b=1 c=1", counts)
	}
	if words := rr.Sinks["words"]; len(words) != 5 {
		t.Fatalf("words sink carries %d quanta, want 5", len(words))
	}

	// The origin dispatched and the other peer executed (its executed_total
	// is labeled with its own advertise address).
	if v := counterOf(a, "rheem_distexec_dispatched_total"); v < 1 {
		t.Fatalf("rheem_distexec_dispatched_total on %s = %g, want >= 1", a.addr, v)
	}
	if v := b.metrics.Counter("rheem_distexec_executed_total", telemetry.L("peer", b.addr)).Value(); v < 1 {
		t.Fatalf("rheem_distexec_executed_total{peer=%s} = %g, want >= 1", b.addr, v)
	}
	if v := counterOf(a, "rheem_distexec_remote_failures_total"); v != 0 {
		t.Errorf("remote failures on a healthy fleet: %g", v)
	}

	// The stitched trace shows the remote stage with the worker's span tree
	// grafted under the dispatch span.
	resp, raw = wireReq(t, http.MethodGet, "http://"+a.addr+"/v1/jobs/"+id+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, raw)
	}
	var snap trace.SpanJSON
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	dispatches := remoteSpans(&snap)
	if len(dispatches) < 1 {
		t.Fatalf("stitched trace has no remote-stage dispatch spans: %s", raw)
	}
	stitched := 0
	for _, sp := range dispatches {
		if peer, _ := sp.Attr("peer"); peer != b.addr {
			t.Errorf("dispatch span names peer %q, want %s", peer, b.addr)
		}
		if msg, ok := sp.Attr("stitch_error"); ok {
			t.Errorf("stitching failed: %s", msg)
		}
		if len(sp.Children) > 0 {
			stitched++
		}
	}
	if stitched == 0 {
		t.Error("no dispatch span carries a grafted remote subtree")
	}

	// The profile attributes remote stages to the executing peer.
	resp, raw = wireReq(t, http.MethodGet, "http://"+a.addr+"/v1/jobs/"+id+"/profile", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: %d %s", resp.StatusCode, raw)
	}
	var profile struct {
		Stages []struct {
			Stage  string  `json:"stage"`
			Peer   string  `json:"peer"`
			WallMs float64 `json:"wall_ms"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(raw, &profile); err != nil {
		t.Fatal(err)
	}
	remoteStages := 0
	for _, st := range profile.Stages {
		if st.Peer == b.addr {
			remoteStages++
			if st.WallMs <= 0 {
				t.Errorf("remote stage %s reports no wall time", st.Stage)
			}
		}
	}
	if remoteStages == 0 {
		t.Fatalf("profile attributes no stage to %s: %s", b.addr, raw)
	}

	assertNoShuffleLeftovers(t, peers)
}

// TestClusterDistexecMetricsSpread is the verify.sh fleet smoke: a 3-peer
// -cluster-exec fleet runs several distinct jobs submitted to one peer, and
// the aggregated /v1/cluster/metrics exposition proves remote executions
// happened on at least two different peers (round-robin placement cycles
// the sorted alive ring).
func TestClusterDistexecMetricsSpread(t *testing.T) {
	peers := startFleetCfg(t, 3, fleetConfig{exec: true})
	a := peers[0]

	// Distinct scripts, so the result cache cannot absorb any of them.
	scripts := []string{
		wordCountScript,
		"lines = load 'dfs://words.txt'; words = flatmap lines using split; collect words;",
		"lines = load 'dfs://words.txt'; collect lines;",
	}
	for _, script := range scripts {
		submitJob(t, a.addr, script)
	}

	resp, raw := wireReq(t, http.MethodGet, "http://"+a.addr+"/v1/cluster/metrics?format=json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster/metrics: %d %s", resp.StatusCode, raw)
	}
	var cm ClusterMetricsResponse
	if err := json.Unmarshal(raw, &cm); err != nil {
		t.Fatal(err)
	}
	if len(cm.Unreachable) != 0 {
		t.Fatalf("unreachable peers during scrape: %v", cm.Unreachable)
	}
	executingPeers := 0
	for _, fam := range cm.Families {
		if fam.Name != "rheem_distexec_executed_total" {
			continue
		}
		for _, series := range fam.Series {
			if series.Value >= 1 {
				executingPeers++
			}
		}
	}
	if executingPeers < 2 {
		t.Fatalf("remote executions on %d peers, want >= 2: %s", executingPeers, raw)
	}
	assertNoShuffleLeftovers(t, peers)
}

// TestClusterDistexecPeerDeathFallback kills the only remote peer and
// submits immediately: the dispatch fails (or, if suspicion already
// propagated, placement refuses), the stage re-executes locally, and the
// job succeeds with correct results.
func TestClusterDistexecPeerDeathFallback(t *testing.T) {
	peers := startFleetCfg(t, 2, fleetConfig{exec: true})
	a, b := peers[0], peers[1]

	b.kill()
	got := wireRunCounts(t, a.addr)
	if got["a"] != 3 || got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("counts after peer death = %v, want a=3 b=1 c=1", got)
	}
	fails := counterOf(a, "rheem_distexec_remote_failures_total")
	pins := a.metrics.Counter("rheem_distexec_pinned_local_total", telemetry.L("reason", "no-peers")).Value()
	if fails < 1 && pins < 1 {
		t.Errorf("neither a failed dispatch (%g) nor a no-peers pin (%g) recorded", fails, pins)
	}
	assertNoShuffleLeftovers(t, peers[:1])
}

// TestClusterDistexecKillSwitch: with the global kill switch on, a fleet
// with -cluster-exec never dispatches and every stage pins local.
func TestClusterDistexecKillSwitch(t *testing.T) {
	peers := startFleetCfg(t, 2, fleetConfig{exec: true})
	a, b := peers[0], peers[1]

	prev := distexec.SetDisabled(true)
	t.Cleanup(func() { distexec.SetDisabled(prev) })

	if got := wireRunCounts(t, a.addr); got["a"] != 3 {
		t.Fatalf("counts under kill switch = %v", got)
	}
	if v := counterOf(a, "rheem_distexec_dispatched_total"); v != 0 {
		t.Errorf("kill switch dispatched %g stages", v)
	}
	if v := a.metrics.Counter("rheem_distexec_pinned_local_total", telemetry.L("reason", "killswitch")).Value(); v < 1 {
		t.Errorf("no killswitch pins recorded")
	}
	if v := b.metrics.Counter("rheem_distexec_executed_total", telemetry.L("peer", b.addr)).Value(); v != 0 {
		t.Errorf("peer executed %g fragments under kill switch", v)
	}
}
