package rheem_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, regenerating the corresponding experiment and
// reporting the headline comparison as custom metrics (ms per system). Run
//
//	go test -bench=. -benchmem
//
// RHEEM_BENCH_SCALE (default 0.25) shrinks or grows the inputs; 1.0 is the
// laptop-scale default the EXPERIMENTS.md numbers were recorded at.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"rheem"
	"rheem/internal/core"
	"rheem/internal/experiments"
	"rheem/internal/rescache"
	"rheem/internal/storage/dfs"
)

func benchScale() float64 {
	if s := os.Getenv("RHEEM_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

func benchOpts() experiments.Options {
	return experiments.Options{Scale: benchScale()}
}

// reportRows exposes each system's measured time as a benchmark metric.
func reportRows(b *testing.B, rows []experiments.Row) {
	b.Helper()
	type agg struct {
		ms float64
		n  int
	}
	sums := map[string]*agg{}
	for _, r := range rows {
		if r.Ms < 0 {
			continue
		}
		a := sums[r.System]
		if a == nil {
			a = &agg{}
			sums[r.System] = a
		}
		a.ms += r.Ms
		a.n++
	}
	for system, a := range sums {
		b.ReportMetric(a.ms/float64(a.n), metricName(system))
	}
}

// metricName sanitizes a system label into a ReportMetric-legal unit.
func metricName(system string) string {
	r := strings.NewReplacer(" ", "_", "(", "_", ")", "", "@", "_")
	return r.Replace(system) + "_ms"
}

func runExperiment(b *testing.B, fn func(experiments.Options) ([]experiments.Row, error)) {
	b.Helper()
	var last []experiments.Row
	for i := 0; i < b.N; i++ {
		rows, err := fn(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	reportRows(b, last)
}

// BenchmarkTable1 regenerates the task/dataset inventory.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a: platform independence — BigDansing error detection.
func BenchmarkFig2a(b *testing.B) { runExperiment(b, experiments.Fig2a) }

// BenchmarkFig2b: opportunistic cross-platform — SGD vs MLlib/SystemML.
func BenchmarkFig2b(b *testing.B) { runExperiment(b, experiments.Fig2b) }

// BenchmarkFig2c: mandatory cross-platform — PageRank out of the store.
func BenchmarkFig2c(b *testing.B) { runExperiment(b, experiments.Fig2c) }

// BenchmarkFig2d: polystore — TPC-H Q5 in place vs consolidate-first.
func BenchmarkFig2d(b *testing.B) { runExperiment(b, experiments.Fig2d) }

// BenchmarkFig9a: platform-independence sweep, WordCount.
func BenchmarkFig9a(b *testing.B) { runExperiment(b, experiments.Fig9a) }

// BenchmarkFig9b: platform-independence sweep, SGD.
func BenchmarkFig9b(b *testing.B) { runExperiment(b, experiments.Fig9b) }

// BenchmarkFig9c: platform-independence sweep, CrocoPR.
func BenchmarkFig9c(b *testing.B) { runExperiment(b, experiments.Fig9c) }

// BenchmarkFig9d: opportunistic sweep, WordCount result fraction.
func BenchmarkFig9d(b *testing.B) { runExperiment(b, experiments.Fig9d) }

// BenchmarkFig9e: opportunistic sweep, SGD batch size.
func BenchmarkFig9e(b *testing.B) { runExperiment(b, experiments.Fig9e) }

// BenchmarkFig9f: opportunistic sweep, CrocoPR iterations.
func BenchmarkFig9f(b *testing.B) { runExperiment(b, experiments.Fig9f) }

// BenchmarkFig10a: the hidden-opportunity Join subquery.
func BenchmarkFig10a(b *testing.B) { runExperiment(b, experiments.Fig10a) }

// BenchmarkFig10b: progressive optimization on/off.
func BenchmarkFig10b(b *testing.B) { runExperiment(b, experiments.Fig10b) }

// BenchmarkFig10c: exploratory mode on/off.
func BenchmarkFig10c(b *testing.B) { runExperiment(b, experiments.Fig10c) }

// BenchmarkFig11: RHEEM vs Musketeer on CrocoPR.
func BenchmarkFig11(b *testing.B) { runExperiment(b, experiments.Fig11) }

// Benchmark_AblationPruning: lossless pruning vs exhaustive enumeration.
func Benchmark_AblationPruning(b *testing.B) { runExperiment(b, experiments.AblationPruning) }

// Benchmark_AblationMovement: conversion tree vs naive per-path movement.
func Benchmark_AblationMovement(b *testing.B) { runExperiment(b, experiments.AblationMovement) }

// Benchmark_AblationLearnedCosts: learned vs default cost model choices.
func Benchmark_AblationLearnedCosts(b *testing.B) { runExperiment(b, experiments.AblationLearnedCosts) }

// Package-level UDFs so rebuilt plans fingerprint identically (the result
// cache keys on UDF symbol identity).
func benchSplit(q any) []any {
	fields := strings.Fields(q.(string))
	out := make([]any, len(fields))
	for i, w := range fields {
		out[i] = core.KV{Key: w, Value: int64(1)}
	}
	return out
}

func benchWordOf(q any) any { return q.(core.KV).Key }

func benchSumCounts(a, b any) any {
	ka, kb := a.(core.KV), b.(core.KV)
	return core.KV{Key: ka.Key, Value: ka.Value.(int64) + kb.Value.(int64)}
}

// benchWordCountPlan builds a fresh WordCount plan, the way each incoming
// server job would: new operator instances, identical fingerprints.
func benchWordCountPlan(ctx *rheem.Context) *core.Plan {
	b := ctx.NewPlan("bench-wc")
	b.ReadTextFile("dfs://bench-words.txt").
		FlatMap("split", benchSplit).
		ReduceBy("count", benchWordOf, benchSumCounts).
		CollectSink()
	return b.Plan()
}

func benchCacheCtx(b *testing.B, cache *rescache.Cache) *rheem.Context {
	b.Helper()
	ctx, err := rheem.NewContext(rheem.Config{FastSimulation: true, ResultCache: cache})
	if err != nil {
		b.Fatal(err)
	}
	lines := make([]string, 400)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta gamma delta word%d", i%37)
	}
	if err := ctx.DFS.WriteLines("bench-words.txt", lines); err != nil {
		b.Fatal(err)
	}
	return ctx
}

// BenchmarkWordCountCacheHit anchors the result cache's win: the same
// WordCount job submitted repeatedly. The first (untimed) run populates the
// cache; every timed run must substitute a cache scan for the text-file
// scan, flatmap, and reduce stages.
func BenchmarkWordCountCacheHit(b *testing.B) {
	cache := rescache.New(rescache.Options{MaxBytes: 64 << 20})
	ctx := benchCacheCtx(b, cache)
	if _, err := ctx.Execute(benchWordCountPlan(ctx)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Execute(benchWordCountPlan(ctx)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := cache.Stats(false); st.Hits < int64(b.N) {
		b.Fatalf("cache hits = %d over %d runs: warm runs re-executed the pipeline", st.Hits, b.N)
	}
}

// BenchmarkWordCountSpillHit prices the disk tier: the cache is kept so
// small that a high-benefit filler entry demotes the job's results to the
// spill store after every run, so each timed Execute must reload them from
// disk. Compare against BenchmarkWordCountCacheHit (RAM hit) and
// BenchmarkWordCountCacheMiss (full re-execution) — a spill hit should land
// between the two.
func BenchmarkWordCountSpillHit(b *testing.B) {
	spill, err := dfs.New(b.TempDir(), dfs.Options{Replication: 1, Nodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	const maxBytes = 32 << 10
	cache := rescache.New(rescache.Options{
		MaxBytes:      maxBytes,
		SpillStore:    spill,
		SpillMaxBytes: 64 << 20,
	})
	ctx := benchCacheCtx(b, cache)
	if _, err := ctx.Execute(benchWordCountPlan(ctx)); err != nil {
		b.Fatal(err)
	}
	// The filler's enormous benefit keeps it resident, so every reload of a
	// job entry pushes the cache over budget and demotes that entry again.
	if !cache.Put("bench-spill-filler", []any{int64(1)}, 1e9, maxBytes, nil) {
		b.Fatal("filler entry rejected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Execute(benchWordCountPlan(ctx)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := cache.Stats(false)
	if st.SpillReloads < int64(b.N) {
		b.Fatalf("spill reloads = %d over %d runs: warm runs did not hit the disk tier", st.SpillReloads, b.N)
	}
	if st.Spills == 0 {
		b.Fatal("nothing was ever demoted to the spill store")
	}
}

// BenchmarkWordCountCacheMiss is the control: caching disabled, every run
// re-reads and re-aggregates. Compare against BenchmarkWordCountCacheHit.
func BenchmarkWordCountCacheMiss(b *testing.B) {
	ctx := benchCacheCtx(b, nil)
	if _, err := ctx.Execute(benchWordCountPlan(ctx)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Execute(benchWordCountPlan(ctx)); err != nil {
			b.Fatal(err)
		}
	}
}
