package rheem

// Extensibility is a first-class citizen (Section 3 of the paper): plugging
// a new platform requires only (i) its execution operators and mappings and
// (ii) its channel with one conversion to and from an existing channel —
// no changes to the system's code, and no per-existing-platform glue
// (O(n), not O(n*m)). This test builds a brand-new toy platform from
// scratch and shows the optimizer routing work and data through it.

import (
	"fmt"
	"sort"
	"testing"

	"rheem/internal/core"
	"rheem/internal/optimizer"
)

// toyVec is the toy platform's native data structure: a sorted int64
// vector (think: a minimalist column store).
type toyVec struct {
	vals []int64
}

var toyChannel = core.ChannelDescriptor{Name: "toyvec", Platform: "toydb", Reusable: true, AtRest: true}

// toyDriver implements core.Driver for the toy platform. It executes only
// Filter and Sort — over pre-sorted vectors both are trivially cheap,
// which is the niche the optimizer can exploit.
type toyDriver struct{}

func (toyDriver) Name() string { return "toydb" }

func (toyDriver) ChannelDescriptors() []core.ChannelDescriptor {
	return []core.ChannelDescriptor{toyChannel}
}

// Conversions: exactly one each way, to the neutral collection channel.
func (toyDriver) Conversions() []*core.Conversion {
	return []*core.Conversion{
		{
			Name: "toydb.load", From: "collection", To: "toyvec",
			FixedCostMs: 0.5, PerQuantumMs: 0.0001,
			Convert: func(in *core.Channel) (*core.Channel, error) {
				data := in.Payload.(*core.SliceDataset).Data
				v := &toyVec{vals: make([]int64, 0, len(data))}
				for _, q := range data {
					n, ok := q.(int64)
					if !ok {
						return nil, fmt.Errorf("toydb: only int64 quanta, got %T", q)
					}
					v.vals = append(v.vals, n)
				}
				sort.Slice(v.vals, func(i, j int) bool { return v.vals[i] < v.vals[j] })
				return core.NewChannel(toyChannel, v, int64(len(v.vals))), nil
			},
		},
		{
			Name: "toydb.dump", From: "toyvec", To: "collection",
			FixedCostMs: 0.5, PerQuantumMs: 0.0001,
			Convert: func(in *core.Channel) (*core.Channel, error) {
				v := in.Payload.(*toyVec)
				out := make([]any, len(v.vals))
				for i, n := range v.vals {
					out[i] = n
				}
				return core.NewChannel(core.CollectionChannel, core.NewSliceDataset(out), int64(len(out))), nil
			},
		},
	}
}

func (toyDriver) RegisterMappings(r *core.MappingRegistry) {
	for kind, name := range map[core.Kind]string{
		core.KindFilter: "toydb.filter",
		core.KindSort:   "toydb.sort",
	} {
		r.Register(kind, core.Alternative{Platform: "toydb", Steps: []core.ExecOpTemplate{{
			Name: name, Platform: "toydb", Kind: kind,
			In: []string{"toyvec"}, Out: "toyvec",
		}}})
	}
}

func (toyDriver) Execute(stage *core.Stage, in *core.Inputs) (map[*core.Operator]*core.Channel, *core.StageStats, error) {
	results := map[*core.Operator]*toyVec{}
	for _, op := range stage.Ops {
		var input *toyVec
		if producer := op.Inputs()[0]; stage.Contains(producer) {
			input = results[producer]
		} else {
			ch := in.Main[op][0]
			if err := ch.Consume(); err != nil {
				return nil, nil, err
			}
			v, ok := ch.Payload.(*toyVec)
			if !ok {
				return nil, nil, fmt.Errorf("toydb: expected toyvec input, got %T", ch.Payload)
			}
			input = v
		}
		switch op.Kind {
		case core.KindFilter:
			out := &toyVec{}
			for _, n := range input.vals {
				if op.UDF.Pred(n) {
					out.vals = append(out.vals, n)
				}
			}
			results[op] = out
		case core.KindSort:
			results[op] = input // already sorted: toydb's superpower
		default:
			return nil, nil, fmt.Errorf("toydb: unsupported kind %s", op.Kind)
		}
	}
	outs := map[*core.Operator]*core.Channel{}
	stats := &core.StageStats{Stage: stage, OutCards: map[*core.Operator]int64{}, Ops: map[*core.Operator]core.OpStats{}}
	for _, op := range stage.TerminalOuts {
		v := results[op]
		outs[op] = core.NewChannel(toyChannel, v, int64(len(v.vals)))
		stats.OutCards[op] = int64(len(v.vals))
	}
	return outs, stats, nil
}

func TestPluggingANewPlatform(t *testing.T) {
	ctx := fastCtx(t)
	// The one registration call the paper promises.
	if err := ctx.Registry.Register(toyDriver{}); err != nil {
		t.Fatal(err)
	}

	// A plan whose middle is pinned to the new platform; sources and sinks
	// stay wherever the optimizer likes. Data must flow collection ->
	// toyvec -> collection through the two new conversions — discovered via
	// the conversion graph, not via hand-written glue.
	data := make([]any, 500)
	for i := range data {
		data[i] = int64((i * 37) % 500)
	}
	b := ctx.NewPlan("with-toydb")
	out := b.LoadCollection("nums", data).
		Filter("keep-small", func(q any) bool { return q.(int64) < 100 }).WithTargetPlatform("toydb").
		Sort(nil).WithTargetPlatform("toydb").
		Map("stringify", func(q any) any { return fmt.Sprintf("v=%d", q.(int64)) })
	sink := out.CollectSink()

	ep, err := ctx.Optimize(b.Plan())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range ep.Platforms() {
		if p == "toydb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("toydb missing from plan platforms: %v", ep.Platforms())
	}

	res, err := ctx.Execute(b.Plan())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.CollectFrom(sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("filtered size = %d, want 100", len(got))
	}
	// toydb's Sort result must be genuinely ordered after the round trip.
	prev := int64(-1)
	for _, q := range got {
		var v int64
		fmt.Sscanf(q.(string), "v=%d", &v)
		if v < prev {
			t.Fatalf("output not sorted: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestNewPlatformChosenOnMerit(t *testing.T) {
	// Without pins, the optimizer should route a Sort to toydb when the
	// cost table is told how cheap toydb sorting is.
	ctx := fastCtx(t)
	if err := ctx.Registry.Register(toyDriver{}); err != nil {
		t.Fatal(err)
	}
	// Teach the cost model the platform's profile (what the cost learner
	// would otherwise derive from logs): sorting pre-sorted vectors is free.
	ctx.Costs.Ops["toydb.sort"] = costParamsNear(0)
	ctx.Costs.Ops["toydb.filter"] = costParamsNear(0.00005)

	data := make([]any, 200000)
	for i := range data {
		data[i] = int64((i * 7919) % 200000)
	}
	b := ctx.NewPlan("merit")
	src := b.LoadCollection("nums", data).WithTargetPlatform("streams")
	sorted := src.Sort(nil) // free: the optimizer chooses
	sink := sorted.CollectSink()
	sink.TargetPlatform = "streams"
	ep, err := ctx.Optimize(b.Plan())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range b.Plan().Operators() {
		if op.Kind == core.KindSort {
			if got := ep.PlatformOf(op); got != "toydb" {
				t.Fatalf("sort assigned to %q, want toydb\n%s", got, ep)
			}
		}
	}
}

// costParamsNear builds an OpCostParams with the given per-quantum cost.
func costParamsNear(perQ float64) optimizer.OpCostParams {
	return optimizer.OpCostParams{CPUPerQuantum: perQ, FixedOverhead: 0.1}
}
